"""Tests for the logic-optimization pipeline (:mod:`repro.synth.opt`).

The pipeline is only allowed to exist because it is equivalence-preserving:
the optimized netlist must produce a bit-identical stream at every output
port, on both simulators, for every built-in workload and applicable
architecture.  The unit tests pin each pass's rewrites on hand-built
netlists; the property tests pin equivalence, the stats bookkeeping
invariant, and the acceptance criterion that O1 strictly shrinks the CntAG
decoder points of the demo grid.
"""

import pytest

from repro.engine.jobs import STYLE_VARIANTS, build_design
from repro.flow import FlowSpec
from repro.hdl.compiled import CompiledSimulator
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.synth.flow import run_synthesis_flow
from repro.synth.opt import (
    BufferCollapsePass,
    ConstantFoldPass,
    DeadCellPass,
    InvPairPass,
    OptReport,
    PassManager,
    SharePass,
    optimize_netlist,
    passes_for_level,
)
from repro.workloads.registry import available_workloads, build_pattern


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def _output_streams(netlist, cycles, simulator_cls):
    """Per-cycle tuple of every output-port value, after each clock edge."""
    sim = simulator_cls(netlist)
    if "reset" in netlist.inputs:
        sim.poke("reset", 0)
    if "next" in netlist.inputs:
        sim.poke("next", 1)
    stream = []
    for _ in range(cycles):
        sim.step()
        stream.append(
            tuple(sim.peek(net) for net in netlist.outputs.values())
        )
    return stream


def _assert_equivalent(original, optimized, cycles):
    """Both netlists, both simulators, bit-identical output streams."""
    reference = _output_streams(original, cycles, Simulator)
    assert _output_streams(optimized, cycles, Simulator) == reference
    assert _output_streams(optimized, cycles, CompiledSimulator) == reference
    assert _output_streams(original, cycles, CompiledSimulator) == reference


def _optimize_clone(netlist, **kwargs):
    clone = netlist.clone()
    report = optimize_netlist(clone, **kwargs)
    clone.validate()
    return clone, report


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

def test_const_fold_replaces_fully_constant_cone():
    netlist = Netlist("const")
    a = netlist.add_input("a")
    zero = netlist.const(0)
    y = netlist.new_net("y")
    netlist.add_cell("AND2", A=a, B=zero, Y=y)  # a & 0 == 0
    netlist.add_output("y", y)
    opt, report = _optimize_clone(netlist, passes=[ConstantFoldPass()])
    assert report.changed
    # The AND is gone; the output is tie-driven.
    assert all(c.cell_type != "AND2" for c in opt.cells.values())
    out_net = opt.outputs["y"]
    assert out_net.driver[0].cell_type == "TIE0"
    _assert_equivalent(netlist, opt, 4)


def test_const_fold_wires_through_identity_inputs():
    netlist = Netlist("wire")
    a = netlist.add_input("a")
    one = netlist.const(1)
    y = netlist.new_net("y")
    netlist.add_cell("AND2", A=a, B=one, Y=y)  # a & 1 == a
    netlist.add_output("y", y)
    opt, _ = _optimize_clone(netlist, passes=[ConstantFoldPass(), DeadCellPass()])
    # Output port now aliases the input directly; all logic folded away.
    assert opt.outputs["y"] is opt.inputs["a"]
    assert len(opt.cells) == 0


def test_const_fold_rewrites_controlled_nand_as_inverter():
    netlist = Netlist("nandinv")
    a = netlist.add_input("a")
    one = netlist.const(1)
    y = netlist.new_net("y")
    netlist.add_cell("NAND2", A=a, B=one, Y=y)  # ~(a & 1) == ~a
    netlist.add_output("y", y)
    opt, _ = _optimize_clone(netlist, passes=[ConstantFoldPass(), DeadCellPass()])
    assert [c.cell_type for c in opt.cells.values()] == ["INV"]
    _assert_equivalent(netlist, opt, 2)


def test_const_fold_mux_with_constant_select():
    netlist = Netlist("muxsel")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    sel = netlist.const(1)
    y = netlist.new_net("y")
    netlist.add_cell("MUX2", A=a, B=b, S=sel, Y=y)  # S=1 selects B
    netlist.add_output("y", y)
    opt, _ = _optimize_clone(netlist, passes=[ConstantFoldPass(), DeadCellPass()])
    assert opt.outputs["y"] is opt.inputs["b"]


def test_const_fold_mux_with_identical_data_inputs():
    netlist = Netlist("muxsame")
    a = netlist.add_input("a")
    s = netlist.add_input("s")
    y = netlist.new_net("y")
    netlist.add_cell("MUX2", A=a, B=a, S=s, Y=y)  # both arms are `a`
    netlist.add_output("y", y)
    opt, _ = _optimize_clone(netlist, passes=[ConstantFoldPass(), DeadCellPass()])
    assert opt.outputs["y"] is opt.inputs["a"]


def test_const_fold_flop_stuck_at_reset_state():
    netlist = Netlist("deadflop")
    clk = netlist.add_input("clk")
    zero = netlist.const(0)
    q = netlist.new_net("q")
    netlist.add_cell("DFF", D=zero, CLK=clk, Q=q)  # starts 0, loads 0 forever
    netlist.add_output("q", q)
    opt, _ = _optimize_clone(netlist, passes=[ConstantFoldPass()])
    assert not opt.sequential_cells()
    assert opt.outputs["q"].driver[0].cell_type == "TIE0"
    _assert_equivalent(netlist, opt, 4)


def test_const_fold_keeps_flop_that_can_leave_reset_state():
    netlist = Netlist("liveflop")
    clk = netlist.add_input("clk")
    one = netlist.const(1)
    q = netlist.new_net("q")
    netlist.add_cell("DFF", D=one, CLK=clk, Q=q)  # 0 on cycle 0, then 1
    netlist.add_output("q", q)
    opt, _ = _optimize_clone(netlist, opt_level=1)
    assert len(opt.sequential_cells()) == 1
    _assert_equivalent(netlist, opt, 4)


# ---------------------------------------------------------------------------
# Sharing (structural CSE)
# ---------------------------------------------------------------------------

def test_share_merges_commutative_duplicates():
    netlist = Netlist("cse")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y1 = netlist.new_net("y1")
    y2 = netlist.new_net("y2")
    netlist.add_cell("AND2", A=a, B=b, Y=y1)
    netlist.add_cell("AND2", A=b, B=a, Y=y2)  # same function, swapped pins
    netlist.add_output("y1", y1)
    netlist.add_output("y2", y2)
    opt, report = _optimize_clone(netlist, passes=[SharePass()])
    assert len(opt.cells) == 1
    assert report.passes[0].merged == 1
    # Both ports alias the surviving cell's output.
    assert opt.outputs["y1"] is opt.outputs["y2"]
    _assert_equivalent(netlist, opt, 2)


def test_share_keeps_noncommutative_cells_apart():
    netlist = Netlist("mux")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    s = netlist.add_input("s")
    y1 = netlist.new_net("y1")
    y2 = netlist.new_net("y2")
    netlist.add_cell("MUX2", A=a, B=b, S=s, Y=y1)
    netlist.add_cell("MUX2", A=b, B=a, S=s, Y=y2)  # swapped arms differ!
    netlist.add_output("y1", y1)
    netlist.add_output("y2", y2)
    opt, report = _optimize_clone(netlist, passes=[SharePass()])
    assert len(opt.cells) == 2
    assert not report.changed


def test_share_merges_identical_flops():
    netlist = Netlist("ffpair")
    clk = netlist.add_input("clk")
    d = netlist.add_input("d")
    q1 = netlist.new_net("q1")
    q2 = netlist.new_net("q2")
    netlist.add_cell("DFF", D=d, CLK=clk, Q=q1)
    netlist.add_cell("DFF", D=d, CLK=clk, Q=q2)
    netlist.add_output("q1", q1)
    netlist.add_output("q2", q2)
    opt, _ = _optimize_clone(netlist, passes=[SharePass()])
    assert len(opt.sequential_cells()) == 1
    _assert_equivalent(netlist, opt, 4)


# ---------------------------------------------------------------------------
# Inverter pairs and buffer chains
# ---------------------------------------------------------------------------

def test_inv_pair_collapses_even_chains():
    netlist = Netlist("invchain")
    a = netlist.add_input("a")
    n1, n2, n3, n4 = (netlist.new_net(f"n{i}") for i in range(4))
    netlist.add_cell("INV", A=a, Y=n1)
    netlist.add_cell("INV", A=n1, Y=n2)
    netlist.add_cell("INV", A=n2, Y=n3)
    netlist.add_cell("INV", A=n3, Y=n4)
    netlist.add_output("y", n4)  # ~~~~a == a
    opt, _ = _optimize_clone(netlist, passes=[InvPairPass(), DeadCellPass()])
    assert opt.outputs["y"] is opt.inputs["a"]
    assert len(opt.cells) == 0


def test_inv_pair_keeps_odd_parity():
    netlist = Netlist("odd")
    a = netlist.add_input("a")
    n1, n2, n3 = (netlist.new_net(f"n{i}") for i in range(3))
    netlist.add_cell("INV", A=a, Y=n1)
    netlist.add_cell("INV", A=n1, Y=n2)
    netlist.add_cell("INV", A=n2, Y=n3)
    netlist.add_output("y", n3)  # ~~~a == ~a
    opt, _ = _optimize_clone(netlist, opt_level=1)
    assert [c.cell_type for c in opt.cells.values()] == ["INV"]
    _assert_equivalent(netlist, opt, 2)


def test_buffer_chain_collapses_to_direct_wiring():
    netlist = Netlist("bufchain")
    a = netlist.add_input("a")
    n1 = netlist.new_net("n1")
    n2 = netlist.new_net("n2")
    y = netlist.new_net("y")
    netlist.add_cell("BUF", A=a, Y=n1)
    netlist.add_cell("BUF", A=n1, Y=n2)
    netlist.add_cell("INV", A=n2, Y=y)
    netlist.add_output("y", y)
    opt, report = _optimize_clone(netlist, passes=[BufferCollapsePass()])
    assert [c.cell_type for c in opt.cells.values()] == ["INV"]
    assert report.passes[0].removed == 2
    # The inverter now reads the input directly.
    inv = next(iter(opt.cells.values()))
    assert inv.pins["A"] is opt.inputs["a"]


# ---------------------------------------------------------------------------
# Dead-cell elimination
# ---------------------------------------------------------------------------

def test_dead_cells_removes_unobserved_cones_only():
    netlist = Netlist("dead")
    a = netlist.add_input("a")
    clk = netlist.add_input("clk")
    live = netlist.new_net("live")
    netlist.add_cell("INV", A=a, Y=live)
    netlist.add_output("y", live)
    # A dead register cone: flop feeding a gate nobody reads.
    dq = netlist.new_net("dq")
    dead = netlist.new_net("deadnet")
    netlist.add_cell("DFF", D=a, CLK=clk, Q=dq)
    netlist.add_cell("AND2", A=dq, B=a, Y=dead)
    net_count_before = len(netlist.nets)
    opt, report = _optimize_clone(netlist, passes=[DeadCellPass()])
    assert [c.cell_type for c in opt.cells.values()] == ["INV"]
    assert report.passes[0].removed == 2
    # Dangling nets went with the cells; ports survive.
    assert len(opt.nets) < net_count_before
    assert set(opt.inputs) == {"a", "clk"} and set(opt.outputs) == {"y"}


def test_dead_cells_keeps_flop_feedback_cones():
    netlist = Netlist("fb")
    clk = netlist.add_input("clk")
    q = netlist.new_net("q")
    d = netlist.new_net("d")
    netlist.add_cell("INV", A=q, Y=d)  # feedback: only reachable through flop
    netlist.add_cell("DFF", D=d, CLK=clk, Q=q)
    netlist.add_output("q", q)
    opt, report = _optimize_clone(netlist, passes=[DeadCellPass()])
    assert len(opt.cells) == 2
    assert not report.changed


# ---------------------------------------------------------------------------
# Manager / report bookkeeping
# ---------------------------------------------------------------------------

def test_opt_level_zero_is_identity():
    netlist = build_design(build_pattern("fifo", 8, 8), "CntAG", "decoders").netlist
    clone = netlist.clone()
    report = optimize_netlist(clone, opt_level=0)
    assert report.rounds == 0 and not report.changed
    assert report.cells_removed == 0
    assert len(clone.cells) == len(netlist.cells)


def test_negative_opt_level_rejected():
    with pytest.raises(ValueError):
        passes_for_level(-1)
    with pytest.raises(ValueError):
        PassManager([DeadCellPass()], max_rounds=0)


def test_report_accounting_and_describe():
    netlist = build_design(build_pattern("dct", 8, 8), "CntAG", "decoders").netlist
    clone = netlist.clone()
    report = optimize_netlist(clone, opt_level=1)
    assert isinstance(report, OptReport)
    # The headline invariant: net removals + survivors == original count.
    assert report.cells_removed + report.final_cells == report.original_cells
    gross_removed = sum(stats.removed for stats in report.passes)
    gross_added = sum(stats.added for stats in report.passes)
    assert report.original_cells + gross_added - gross_removed == report.final_cells
    assert report.cells_removed > 0
    assert all(stats.iterations >= 1 for stats in report.passes)
    text = report.describe()
    assert "logic optimization" in text
    for stats in report.passes:
        assert stats.name in text


def test_pipeline_reaches_fixpoint():
    """Optimizing an already-optimized netlist must change nothing."""
    netlist = build_design(build_pattern("zoombytwo", 8, 8), "CntAG", "decoders").netlist
    first = netlist.clone()
    optimize_netlist(first, opt_level=1)
    again = optimize_netlist(first, opt_level=1)
    assert not again.changed
    assert again.cells_removed == 0


# ---------------------------------------------------------------------------
# Flow integration
# ---------------------------------------------------------------------------

def test_flow_runs_opt_before_buffering_and_reports_it():
    design = build_design(build_pattern("motion_est_read", 16, 16), "CntAG", "decoders")
    raw = run_synthesis_flow(design.netlist)
    opt = run_synthesis_flow(design.netlist, spec=FlowSpec(opt_level=1))
    assert raw.opt_report is None
    assert opt.opt_report is not None and opt.opt_report.cells_removed > 0
    assert opt.area_cells < raw.area_cells
    # The caller's netlist is untouched by either run.
    assert len(design.netlist.cells) == opt.opt_report.original_cells


# ---------------------------------------------------------------------------
# Equivalence: every built-in workload x applicable style
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", available_workloads())
@pytest.mark.parametrize("style,variant", STYLE_VARIANTS)
def test_optimized_netlist_is_bit_identical(workload, style, variant):
    """The address stream survives O1 bit-for-bit, on both simulators."""
    pattern = build_pattern(workload, 4, 4)
    try:
        design = build_design(pattern, style, variant)
        netlist = design.netlist
    except Exception:
        pytest.skip(f"{style}[{variant}] not applicable to {workload}")
    optimized, report = _optimize_clone(netlist)
    # Bookkeeping holds on every real design, not just the hand-built ones.
    assert report.cells_removed + report.final_cells == report.original_cells
    cycles = min(pattern.to_sequence().length, 48)
    _assert_equivalent(netlist, optimized, cycles)


def test_optimization_strictly_shrinks_cntag_decoder_demo_points():
    """Acceptance: O1 reduces total cells on every CntAG[decoders] demo point."""
    for workload in ("fifo", "dct", "motion_est_read", "zoombytwo"):
        for size in (4, 8, 16):
            design = build_design(
                build_pattern(workload, size, size), "CntAG", "decoders"
            )
            raw = run_synthesis_flow(design.netlist)
            opt = run_synthesis_flow(design.netlist, spec=FlowSpec(opt_level=1))
            raw_cells = sum(raw.area.cell_counts.values())
            opt_cells = sum(opt.area.cell_counts.values())
            assert opt_cells < raw_cells, (
                f"CntAG[decoders] {workload} {size}x{size}: "
                f"O1 {opt_cells} !< O0 {raw_cells}"
            )
