"""Campaign service: protocol, round-trips, concurrency, shutdown."""

import asyncio
import contextlib
import math
import threading
import time

import pytest

from repro.engine import runner as runner_module
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob
from repro.engine.runner import CampaignRunner, EvalRecord
from repro.service.client import ServiceClient, run_campaign_remote
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ServiceError,
    decode_message,
    encode_message,
    job_from_wire,
    job_to_wire,
)
from repro.service.server import CampaignService

JOB_A = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
JOB_B = EvalJob("dct", 4, 4, "CntAG", "decoders")
SMALL = Campaign("small", [JOB_A, JOB_B])


# ----------------------------------------------------------------- protocol
def test_encode_decode_round_trip():
    message = {"op": "jobs", "jobs": [job_to_wire(JOB_A)], "id": "r1"}
    line = encode_message(message)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert decode_message(line) == message


def test_encode_rejects_oversized_message():
    with pytest.raises(ServiceError, match="line limit"):
        encode_message({"blob": "x" * MAX_LINE_BYTES})


def test_decode_rejects_garbage():
    with pytest.raises(ServiceError, match="malformed"):
        decode_message(b"{nonsense\n")
    with pytest.raises(ServiceError, match="JSON object"):
        decode_message(b"[1, 2]\n")


def test_job_wire_round_trip_preserves_cache_key():
    for job in SMALL.jobs:
        rebuilt = job_from_wire(job_to_wire(job))
        assert rebuilt == job
        assert rebuilt.key == job.key


def test_job_from_wire_rejects_bad_shapes():
    with pytest.raises(ServiceError, match="missing field"):
        job_from_wire({"workload": "fifo"})
    with pytest.raises(ServiceError, match="bad job spec"):
        job_from_wire({**job_to_wire(JOB_A), "spec": {"no_such_knob": 1}})
    with pytest.raises(ServiceError, match="JSON object"):
        job_from_wire({**job_to_wire(JOB_A), "spec": [1]})


# ------------------------------------------------------------ test harness
@contextlib.contextmanager
def service_running(**kwargs):
    """Run a CampaignService on its own loop thread; yield (host, port)."""
    box = {}
    ready = threading.Event()

    def serve():
        async def main():
            service = CampaignService(**kwargs)
            box["addr"] = await service.start("127.0.0.1", 0)
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="test-service", daemon=True)
    thread.start()
    assert ready.wait(10.0), "service failed to start"
    try:
        yield box["addr"]
    finally:
        box["loop"].call_soon_threadsafe(box["service"].request_shutdown)
        thread.join(10.0)
        assert not thread.is_alive(), "service failed to drain"


def _client_run(addr, coro_factory):
    """Run one async client interaction against the service."""

    async def main():
        async with ServiceClient(*addr) as client:
            return await coro_factory(client)

    return asyncio.run(main())


def _normalized(record):
    data = record.to_dict()
    data["duration_s"] = 0.0
    return {
        key: (None if isinstance(value, float) and math.isnan(value) else value)
        for key, value in data.items()
    }


# --------------------------------------------------------------- round trip
def test_remote_campaign_matches_local_serial_run():
    local = CampaignRunner(ResultCache(None), workers=0).run(SMALL)
    with service_running(cache=ResultCache(None), workers=0) as addr:
        remote = run_campaign_remote(*addr, SMALL)
        assert remote.campaign == SMALL.name
        assert [
            _normalized(r) for r in remote.records
        ] == [_normalized(r) for r in local.records]
        assert remote.hits == 0
        # Second run is served entirely from the server-side cache.
        again = run_campaign_remote(*addr, SMALL)
        assert again.hits == len(SMALL.jobs)
        assert [_normalized(r) for r in again.records] == [
            _normalized(r) for r in local.records
        ]


def test_remote_progress_callback_counts_records():
    seen = []
    with service_running(cache=ResultCache(None), workers=0) as addr:
        run_campaign_remote(
            *addr,
            SMALL,
            progress=lambda record, done, total: seen.append(
                (record.key, done, total)
            ),
        )
    assert len(seen) == 2
    assert sorted(done for _, done, _ in seen) == [1, 2]
    assert all(total == 2 for _, _, total in seen)


@pytest.fixture
def counted_eval(monkeypatch):
    calls = []
    lock = threading.Lock()

    def fake(job):
        with lock:
            calls.append(job.key)
        time.sleep(0.02)
        return EvalRecord(
            workload=job.workload,
            rows=job.rows,
            cols=job.cols,
            style=job.style,
            variant=job.variant,
            library=job.spec.library,
            key=job.key,
            status="ok",
            delay_ns=1.0,
            area_cells=2.0,
        )

    monkeypatch.setattr(runner_module, "evaluate_job", fake)
    return calls


def test_named_campaign_op_with_spec_override(counted_eval):
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def run(client):
            await client._send(
                {"op": "campaign", "campaign": "smoke", "spec": {"opt_level": 1}}
            )
            events = []
            while True:
                event = await client._recv()
                events.append(event)
                if event.get("event") in ("end", "error"):
                    return events

        events = _client_run(addr, run)
    accepted, tail = events[0], events[-1]
    assert accepted["event"] == "accepted"
    assert accepted["label"] == "smoke" and accepted["jobs"] == 16
    assert tail["event"] == "end" and tail["ok"]
    assert tail["records"] == accepted["unique"]
    assert len(counted_eval) == accepted["unique"]


def test_bad_requests_keep_the_connection_usable():
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def run(client):
            errors = []
            # Unknown op.
            await client._send({"op": "frobnicate"})
            errors.append(await client._recv())
            # Malformed line, straight onto the socket.
            client._writer.write(b"{nonsense\n")
            await client._writer.drain()
            errors.append(await client._recv())
            # Unknown campaign name.
            await client._send({"op": "campaign", "campaign": "no-such"})
            errors.append(await client._recv())
            # Bad spec field on the jobs path.
            await client._send(
                {
                    "op": "jobs",
                    "jobs": [{**job_to_wire(JOB_A), "spec": {"bogus": 1}}],
                }
            )
            errors.append(await client._recv())
            # The connection survived all four.
            pong = await client.ping()
            return errors, pong

        errors, pong = _client_run(addr, run)
    assert all(event["event"] == "error" for event in errors)
    assert "unknown op" in errors[0]["error"]
    assert "malformed" in errors[1]["error"]
    assert "unknown campaign" in errors[2]["error"]
    assert "bad job spec" in errors[3]["error"]
    assert pong["ok"] and pong["protocol"] == 1


def test_request_ids_are_echoed_on_every_event(counted_eval):
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def run(client):
            return await client.run_jobs(
                [job_to_wire(JOB_A)], request_id="req-42"
            )

        records, end = _client_run(addr, run)
    assert all(event["id"] == "req-42" for event in records)
    assert end["id"] == "req-42"
    assert end["accepted"]["id"] == "req-42"


# -------------------------------------------------------------- concurrency
def test_concurrent_clients_share_evaluations(counted_eval):
    """N clients asking for the same grid cause exactly one evaluation each."""
    clients = 4
    with service_running(cache=ResultCache(None), workers=0) as addr:
        results = [None] * clients
        failures = []

        def run_one(slot):
            try:
                results[slot] = run_campaign_remote(*addr, SMALL)
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=run_one, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
    assert not failures
    # Whether a client was deduped in-flight or served from cache, the
    # expensive work happened exactly once per unique job.
    assert len(counted_eval) == len(SMALL.jobs)
    reference = [_normalized(r) for r in results[0].records]
    for result in results[1:]:
        assert [_normalized(r) for r in result.records] == reference


def test_request_timeout_produces_error_event(monkeypatch):
    started = threading.Event()

    def slow(job):
        started.set()
        time.sleep(0.5)
        return EvalRecord(
            workload=job.workload,
            rows=job.rows,
            cols=job.cols,
            style=job.style,
            variant=job.variant,
            library=job.spec.library,
            key=job.key,
            status="ok",
        )

    monkeypatch.setattr(runner_module, "evaluate_job", slow)
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def main():
            # Client 1 owns the (slow) flight; client 2 joins the same key
            # with a tiny timeout and must get a timeout error event while
            # its connection stays usable.
            async with ServiceClient(*addr) as one, ServiceClient(*addr) as two:
                owner = asyncio.ensure_future(one.run_jobs([job_to_wire(JOB_A)]))
                await asyncio.to_thread(started.wait, 5.0)
                with pytest.raises(ServiceError, match="outstanding"):
                    await two.run_jobs([job_to_wire(JOB_A)], timeout=0.05)
                pong = await two.ping()
                records, end = await owner
                return pong, records, end

        pong, records, end = asyncio.run(main())
    assert pong["ok"]
    assert end["ok"] and len(records) == 1


# ----------------------------------------------------------------- shutdown
def test_shutdown_op_stops_the_server():
    box = {}
    ready = threading.Event()

    def serve():
        async def main():
            service = CampaignService(cache=ResultCache(None), workers=0)
            box["addr"] = await service.start("127.0.0.1", 0)
            ready.set()
            await service.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(10.0)

    async def run(client):
        await client.shutdown_server()

    _client_run(box["addr"], run)
    thread.join(10.0)
    assert not thread.is_alive()


def test_scheduler_kwarg_is_exclusive_with_cache_config():
    from repro.engine.scheduler import Scheduler

    scheduler = Scheduler(ResultCache(None), workers=0)
    with pytest.raises(ValueError, match="mutually exclusive"):
        CampaignService(cache=ResultCache(None), scheduler=scheduler)
