"""Tests for the SAT cover-correctness oracle (:mod:`repro.verify.cover`)."""

import pytest

from repro.synth.logic.minimize import Implicant, minimize
from repro.synth.logic.truth_table import TruthTable
from repro.verify import verify_cover


def _tables():
    """A spread of truth tables, all widths exhaustively checkable."""
    yield TruthTable(num_inputs=0, on_set=frozenset())
    yield TruthTable(num_inputs=0, on_set=frozenset({0}))
    yield TruthTable.from_function(2, lambda m: m in (1, 2))  # XOR
    yield TruthTable.from_function(3, lambda m: int(bin(m).count("1") >= 2))
    yield TruthTable.from_function(4, lambda m: int(m % 3 == 0))
    yield TruthTable(
        num_inputs=3,
        on_set=frozenset({1, 3, 5}),
        dc_set=frozenset({6, 7}),
    )
    yield TruthTable(
        num_inputs=4,
        on_set=frozenset({0, 2, 8, 10, 15}),
        dc_set=frozenset({4, 6, 12}),
    )


# ---------------------------------------------------------------------------
# Every exact-QM cover is accepted
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("table", list(_tables()), ids=lambda t: repr(t)[:40])
def test_qm_covers_are_proven_exact(table):
    cover, stats = minimize(table)
    verdict = verify_cover(table, cover)
    assert verdict.exact, verdict.describe()
    assert verdict.missed_minterm is None
    assert verdict.overlap_minterm is None
    assert "exact" in verdict.describe()


def test_heuristic_covers_are_also_exact():
    # The greedy fallback (max_exact_inputs forced below width) must still
    # produce *correct* covers -- this oracle is exactly the check ROADMAP
    # wanted before trusting it.
    table = TruthTable.from_function(4, lambda m: int(m % 5 == 1))
    cover, stats = minimize(table, max_exact_inputs=2)
    assert not stats.exact
    assert verify_cover(table, cover).exact


# ---------------------------------------------------------------------------
# Mutated covers are rejected with real witnesses
# ---------------------------------------------------------------------------

def test_dropped_implicant_is_caught_as_missed_minterm():
    table = TruthTable.from_function(3, lambda m: int(bin(m).count("1") >= 2))
    cover, _ = minimize(table)
    assert len(cover) > 1
    verdict = verify_cover(table, cover[1:])
    assert not verdict.exact
    missed = verdict.missed_minterm
    assert missed in table.on_set
    assert not any(imp.covers(missed) for imp in cover[1:])
    assert "is not covered" in verdict.describe()


def test_widened_implicant_is_caught_as_overlap_minterm():
    table = TruthTable.from_function(3, lambda m: m in (3, 7))  # a AND b
    cover, _ = minimize(table)
    # Widen one cube by dropping a cared literal: it now spills into off-set.
    victim = cover[0]
    drop = victim.literals()[0][0]
    widened = Implicant(
        values=victim.values & ~(1 << drop),
        care_mask=victim.care_mask & ~(1 << drop),
        num_inputs=victim.num_inputs,
    )
    verdict = verify_cover(table, [widened] + list(cover[1:]))
    assert not verdict.exact
    overlap = verdict.overlap_minterm
    assert overlap in table.off_set
    assert widened.covers(overlap)
    assert "wrongly covered" in verdict.describe()


def test_empty_cover_of_nonempty_onset_is_rejected():
    table = TruthTable.from_function(2, lambda m: int(m == 3))
    verdict = verify_cover(table, [])
    assert not verdict.exact
    assert verdict.missed_minterm == 3
    assert verdict.overlap_minterm is None


def test_tautological_cube_over_nonfull_onset_is_rejected():
    table = TruthTable.from_function(2, lambda m: int(m == 3))
    everything = Implicant(values=0, care_mask=0, num_inputs=2)
    verdict = verify_cover(table, [everything])
    assert not verdict.exact
    assert verdict.overlap_minterm in table.off_set


def test_dont_cares_may_fall_on_either_side():
    table = TruthTable(
        num_inputs=2, on_set=frozenset({3}), dc_set=frozenset({1})
    )
    # Cover = one cube over minterms {1, 3}: includes dc minterm 1. Legal.
    cube_b = Implicant.from_string("1-")
    assert verify_cover(table, [cube_b]).exact
    # Cover = {ab}: excludes dc minterm 1. Also legal.
    cube_ab = Implicant.from_string("11")
    assert verify_cover(table, [cube_ab]).exact


def test_width_mismatch_is_rejected():
    table = TruthTable.from_function(2, lambda m: int(m == 3))
    with pytest.raises(ValueError):
        verify_cover(table, [Implicant(values=0, care_mask=0, num_inputs=3)])


def test_brute_force_agreement_over_random_mutations():
    """The oracle agrees with exhaustive evaluation for every mutation."""
    table = TruthTable.from_function(3, lambda m: int(m % 3 == 1))
    cover, _ = minimize(table)
    mutations = [list(cover)]
    mutations.extend(
        list(cover[:i]) + list(cover[i + 1:]) for i in range(len(cover))
    )
    for imp in cover:
        for bit in range(3):
            if not (imp.care_mask >> bit) & 1:
                continue
            mutations.append(
                [Implicant(
                    values=imp.values ^ (1 << bit),
                    care_mask=imp.care_mask,
                    num_inputs=3,
                )] + [other for other in cover if other is not imp]
            )
    for mutant in mutations:
        verdict = verify_cover(table, mutant)
        expected_exact = all(
            (any(imp.covers(m) for imp in mutant))
            == (m in table.on_set or m in table.dc_set)
            or m in table.dc_set
            for m in range(8)
        )
        assert verdict.exact == expected_exact, (mutant, verdict.describe())
