"""Cache backends: torn-line recovery, sharded segments, locking, stress."""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.engine.cache import (
    CacheLock,
    CacheLockTimeout,
    JsonlBackend,
    ResultCache,
    ShardedSegmentBackend,
    make_backend,
)
from repro.obs import metrics


def _fill(cache, count, prefix="k", value=0):
    for i in range(count):
        cache.put(f"{prefix}{i}", {"value": value + i})


# --------------------------------------------------------------- torn lines
def test_truncated_trailing_line_keeps_live_prefix(tmp_path, capsys):
    """A crash mid-append must not poison the whole cache."""
    cache = ResultCache(str(tmp_path))
    _fill(cache, 3)
    with open(cache.path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "k3", "record": {"val')  # torn append

    reloaded = ResultCache(str(tmp_path))
    assert len(reloaded) == 3
    assert reloaded.get("k0") == {"value": 0}
    assert "k3" not in reloaded
    err = capsys.readouterr().err
    assert "undecodable cache line" in err
    assert "line=4" in err


def test_torn_line_mid_file_skips_only_that_line(tmp_path):
    cache = ResultCache(str(tmp_path))
    _fill(cache, 2)
    lines = open(cache.path, encoding="utf-8").read().splitlines()
    lines.insert(1, "{nonsense")
    with open(cache.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    before = metrics.counter("cache.torn_lines")
    reloaded = ResultCache(str(tmp_path))
    assert sorted(reloaded.keys()) == ["k0", "k1"]
    assert metrics.counter("cache.torn_lines") == before + 1


# ----------------------------------------------------------------- backends
def test_make_backend_resolves_names_and_instances():
    assert isinstance(make_backend("jsonl"), JsonlBackend)
    assert isinstance(make_backend("sharded"), ShardedSegmentBackend)
    instance = ShardedSegmentBackend(writer_id="w1")
    assert make_backend(instance) is instance
    with pytest.raises(ValueError, match="unknown cache backend"):
        make_backend("bogus")


def test_sharded_backend_writes_per_writer_segments(tmp_path):
    a = ResultCache(str(tmp_path), backend=ShardedSegmentBackend(writer_id="a"))
    b = ResultCache(str(tmp_path), backend=ShardedSegmentBackend(writer_id="b"))
    a.put("ka", {"v": 1})
    b.put("kb", {"v": 2})
    segments = sorted(os.listdir(tmp_path / "segments"))
    assert segments == ["seg-a.jsonl", "seg-b.jsonl"]
    assert not os.path.exists(tmp_path / "results.jsonl")
    # A fresh cache -- regardless of its own write backend -- reads both.
    reader = ResultCache(str(tmp_path))
    assert reader.get("ka") == {"v": 1}
    assert reader.get("kb") == {"v": 2}


def test_segment_record_format_matches_base_format(tmp_path):
    """Same JSON line layout in segments as in the seed results.jsonl."""
    jsonl_dir, sharded_dir = tmp_path / "a", tmp_path / "b"
    ResultCache(str(jsonl_dir)).put("k", {"status": "ok", "delay_ns": 1.5})
    ResultCache(str(sharded_dir), backend="sharded").put(
        "k", {"status": "ok", "delay_ns": 1.5}
    )
    base_line = open(jsonl_dir / "results.jsonl", encoding="utf-8").read()
    seg_file = next((sharded_dir / "segments").iterdir())
    assert open(seg_file, encoding="utf-8").read() == base_line


def test_existing_jsonl_directory_loads_under_sharded_backend(tmp_path):
    """Switching backend over an existing cache dir keeps every record."""
    old = ResultCache(str(tmp_path))
    _fill(old, 4)
    new = ResultCache(str(tmp_path), backend="sharded")
    assert len(new) == 4
    new.put("extra", {"value": 99})
    # And back again: the jsonl-backend reader sees the segment write too.
    assert ResultCache(str(tmp_path)).get("extra") == {"value": 99}


def test_compact_merges_segments_into_base(tmp_path):
    a = ResultCache(str(tmp_path), backend=ShardedSegmentBackend(writer_id="a"))
    b = ResultCache(str(tmp_path), backend=ShardedSegmentBackend(writer_id="b"))
    _fill(a, 3, prefix="a")
    _fill(b, 3, prefix="b")
    a.put("shared", {"value": 1})
    b.put("shared", {"value": 1})  # overlapping key: content-hash, same record

    a.compact()
    assert os.listdir(tmp_path / "segments") == []
    merged = ResultCache(str(tmp_path))
    assert len(merged) == 7
    assert merged.get("shared") == {"value": 1}
    assert merged.get("b2") == {"value": 2}
    # The compacted base file is plain seed-format JSONL.
    with open(merged.path, encoding="utf-8") as handle:
        for line in handle:
            entry = json.loads(line)
            assert set(entry) == {"key", "record"}


def test_compact_preserves_records_from_unseen_writers(tmp_path):
    """Compaction re-reads from disk, so it cannot lose a concurrent write."""
    mine = ResultCache(str(tmp_path))
    _fill(mine, 2)
    # Another process appends after this instance loaded its view.
    other = ResultCache(str(tmp_path), backend="sharded")
    other.put("theirs", {"value": 42})
    assert "theirs" not in mine._records  # never seen by `mine`
    mine.compact()
    assert mine.get("theirs") == {"value": 42}
    assert ResultCache(str(tmp_path)).get("theirs") == {"value": 42}


# -------------------------------------------------------------------- locks
def test_cache_lock_times_out_when_held(tmp_path):
    with CacheLock(str(tmp_path), stale_after_s=9999):
        contender = CacheLock(str(tmp_path), timeout=0.05, stale_after_s=9999)
        with pytest.raises(CacheLockTimeout):
            contender.acquire()
    # Released: acquisition now succeeds immediately.
    with CacheLock(str(tmp_path), timeout=0.05):
        pass


def test_cache_lock_breaks_stale_holder(tmp_path, capsys):
    lock_path = tmp_path / "cache.lock"
    with open(lock_path, "w", encoding="utf-8") as handle:
        handle.write("999999999")  # no such pid
    with CacheLock(str(tmp_path), timeout=1.0):
        pass  # acquired by breaking the dead holder's lock
    assert "breaking stale cache lock" in capsys.readouterr().err


def test_compact_waits_for_lock_release(tmp_path):
    cache = ResultCache(str(tmp_path))
    _fill(cache, 2)
    held = CacheLock(str(tmp_path), stale_after_s=9999).acquire()
    release_timer = threading.Timer(0.1, held.release)
    release_timer.start()
    try:
        cache.compact()  # blocks until the timer releases, then succeeds
    finally:
        release_timer.cancel()
    assert len(ResultCache(str(tmp_path))) == 2


def test_in_memory_cache_has_no_lock():
    with pytest.raises(ValueError, match="no lock"):
        ResultCache(None).lock()


# ------------------------------------------------------------------- stress
def test_multi_writer_thread_stress(tmp_path):
    """Concurrent threads with private sharded writers: no record lost."""
    writers = 8
    per_writer = 25

    def work(index):
        cache = ResultCache(
            str(tmp_path), backend=ShardedSegmentBackend(writer_id=f"t{index}")
        )
        for i in range(per_writer):
            cache.put(f"w{index}-k{i}", {"writer": index, "i": i})  # disjoint
            cache.put("overlap", {"value": "same"})  # overlapping

    threads = [threading.Thread(target=work, args=(i,)) for i in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    merged = ResultCache(str(tmp_path))
    assert len(merged) == writers * per_writer + 1
    assert merged.get("overlap") == {"value": "same"}
    merged.compact()
    reloaded = ResultCache(str(tmp_path))
    assert len(reloaded) == writers * per_writer + 1
    assert reloaded.get("w3-k7") == {"writer": 3, "i": 7}


def _process_writer(directory, index, per_writer):
    cache = ResultCache(directory, backend="sharded")
    for i in range(per_writer):
        cache.put(f"p{index}-k{i}", {"writer": index, "i": i})
        cache.put(f"shared-{i % 3}", {"value": i % 3})


def test_multi_writer_process_stress(tmp_path):
    """Separate processes appending to one cache dir: compact + reload clean."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        pytest.skip("fork start method unavailable")
    writers, per_writer = 4, 10
    processes = [
        ctx.Process(target=_process_writer, args=(str(tmp_path), i, per_writer))
        for i in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(30)
        assert process.exitcode == 0

    merged = ResultCache(str(tmp_path))
    assert len(merged) == writers * per_writer + 3
    merged.compact()
    assert os.listdir(tmp_path / "segments") == []
    reloaded = ResultCache(str(tmp_path))
    assert len(reloaded) == writers * per_writer + 3
    for i in range(3):
        assert reloaded.get(f"shared-{i}") == {"value": i}


def _slow_process_writer(directory, index, per_writer):
    cache = ResultCache(directory, backend="sharded")
    for i in range(per_writer):
        cache.put(f"p{index}-k{i}", {"writer": index, "i": i})
        time.sleep(0.002)  # stretch the run so compactions overlap appends


def _killed_compactor(directory, site):
    from repro.resilience.faults import FaultPlan, FaultRule, install_plan

    install_plan(FaultPlan([FaultRule(site=site, action="exit")]))
    ResultCache(directory, backend="sharded").compact()


def test_concurrent_writers_survive_killed_compactions(tmp_path):
    """Compactors kill -9'd at every commit-protocol point, under live
    concurrent appenders: every acknowledged record survives, the dead
    compactors' stale locks are broken, and a final compaction converges."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        pytest.skip("fork start method unavailable")
    writers, per_writer = 4, 25
    appenders = [
        ctx.Process(
            target=_slow_process_writer, args=(str(tmp_path), i, per_writer)
        )
        for i in range(writers)
    ]
    for process in appenders:
        process.start()
    # Three compaction attempts die mid-flight while the appenders run.
    for site in (
        "cache.compact.merge",
        "cache.compact.commit",
        "cache.compact.cleanup",
    ):
        compactor = ctx.Process(target=_killed_compactor, args=(str(tmp_path), site))
        compactor.start()
        compactor.join(30)
        assert compactor.exitcode == 86  # the exit action's default code
    for process in appenders:
        process.join(60)
        assert process.exitcode == 0

    expected = {
        f"p{index}-k{i}": {"writer": index, "i": i}
        for index in range(writers)
        for i in range(per_writer)
    }
    merged = ResultCache(str(tmp_path))
    assert {key: merged.get(key) for key in expected} == expected
    assert len(merged) == len(expected)
    merged.compact()  # the survivors' compaction finishes the job
    assert os.listdir(tmp_path / "segments") == []
    reloaded = ResultCache(str(tmp_path))
    assert len(reloaded) == len(expected)
    assert reloaded.get("p3-k7") == {"writer": 3, "i": 7}
