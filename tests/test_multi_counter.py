"""Tests for the relaxed (multi-counter) SRAG extension."""

import pytest

from repro.core.mapper import map_sequence
from repro.core.mapping_params import MappingError
from repro.core.multi_counter import (
    GeneralisedSragModel,
    GeneralisedSragParameters,
    build_generalised_srag,
    map_sequence_relaxed,
)
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator


def test_relaxed_mapping_accepts_unequal_division_counts():
    """The paper's DivCnt-violation example becomes representable."""
    sequence = [5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    with pytest.raises(MappingError):
        map_sequence(sequence, num_lines=8)
    parameters = map_sequence_relaxed(sequence, num_lines=8)
    assert GeneralisedSragModel(parameters).run(len(sequence)) == sequence


def test_relaxed_mapping_accepts_unequal_pass_counts():
    """The paper's PassCnt-violation example becomes representable."""
    sequence = [5, 1, 4, 0] * 3 + [3, 7, 6, 2] * 2
    with pytest.raises(MappingError):
        map_sequence(sequence, num_lines=8)
    parameters = map_sequence_relaxed(sequence, num_lines=8)
    assert parameters.pass_schedule == [12, 8]
    assert GeneralisedSragModel(parameters).run(len(sequence)) == sequence


def test_relaxed_mapping_still_rejects_out_of_order_circulation():
    with pytest.raises(MappingError):
        map_sequence_relaxed([1, 2, 3, 4, 3, 2, 1, 4], num_lines=5)
    with pytest.raises(MappingError):
        map_sequence_relaxed([], num_lines=4)


def test_relaxed_mapping_matches_strict_on_strict_sequences():
    sequence = [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
    strict = map_sequence(sequence, num_lines=4)
    relaxed = map_sequence_relaxed(sequence, num_lines=4)
    assert relaxed.registers == strict.registers
    assert relaxed.division_counts == strict.division_counts
    assert sum(relaxed.pass_schedule) == len(strict.reduced)


def test_generalised_model_parameter_validation():
    with pytest.raises(ValueError):
        GeneralisedSragModel(
            GeneralisedSragParameters(
                registers=[], division_counts=[1], pass_schedule=[1], num_lines=1
            )
        )
    with pytest.raises(ValueError):
        GeneralisedSragModel(
            GeneralisedSragParameters(
                registers=[(0,)], division_counts=[], pass_schedule=[1], num_lines=1
            )
        )


def test_parameters_lengths():
    sequence = [5, 5, 5, 1, 1, 4, 4, 0, 0]
    parameters = map_sequence_relaxed(sequence, num_lines=8)
    assert parameters.sequence_length == len(sequence)
    assert parameters.reduced_length == 4
    assert parameters.division_counts == [3, 2, 2, 2]


@pytest.mark.parametrize(
    "sequence",
    [
        [5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2],
        [5, 1, 4, 0] * 3 + [3, 7, 6, 2] * 2,
        [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3],
        [2, 2, 2, 2, 1, 0],
    ],
)
def test_structural_generalised_srag_matches_model(sequence):
    parameters = map_sequence_relaxed(sequence)
    netlist = Netlist("gsrag")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    ports = build_generalised_srag(netlist, parameters, clk, nxt, rst)
    netlist.add_output_bus("sel", ports.select_lines)
    sim = Simulator(netlist)
    sim.reset()
    sim.poke("next", 1)
    produced = []
    for _ in range(len(sequence)):
        sim.settle()
        produced.append(sim.peek_onehot(ports.select_lines))
        sim.step()
    assert produced == sequence


def test_generalised_srag_costs_more_than_strict_for_strict_sequences():
    """The schedule logic is the price of flexibility: on a sequence the
    strict SRAG can already handle, the generalised version is not smaller."""
    from repro.core.srag import build_srag
    from repro.synth.flow import run_synthesis_flow

    sequence = [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]

    strict_netlist = Netlist("strict")
    clk = strict_netlist.add_input("clk")
    nxt = strict_netlist.add_input("next")
    rst = strict_netlist.add_input("reset")
    mapping = map_sequence(sequence, num_lines=4)
    ports = build_srag(strict_netlist, mapping, clk, nxt, rst)
    strict_netlist.add_output_bus("sel", ports.select_lines)
    strict_area = run_synthesis_flow(strict_netlist).area_cells

    relaxed_netlist = Netlist("relaxed")
    clk = relaxed_netlist.add_input("clk")
    nxt = relaxed_netlist.add_input("next")
    rst = relaxed_netlist.add_input("reset")
    parameters = map_sequence_relaxed(sequence, num_lines=4)
    ports = build_generalised_srag(relaxed_netlist, parameters, clk, nxt, rst)
    relaxed_netlist.add_output_bus("sel", ports.select_lines)
    relaxed_area = run_synthesis_flow(relaxed_netlist).area_cells

    assert relaxed_area >= strict_area
