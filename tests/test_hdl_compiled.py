"""Equivalence and unit tests for the compiled (levelised) simulator.

The compiled simulator is only allowed to exist because it is bit-for-bit
identical to the reference two-phase simulator; these tests pin that down
on hand-built netlists and on every built-in workload's generators.
"""

import pytest

from repro.engine.jobs import build_design
from repro.hdl.compiled import CompiledSimulator
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import SimulationError, Simulator
from repro.synth.power import estimate_power
from repro.workloads.registry import available_workloads, build_pattern


def _toggle_flop():
    netlist = Netlist("toggle")
    clk = netlist.add_input("clk")
    q = netlist.new_net("q")
    d = netlist.new_net("d")
    netlist.add_cell("INV", A=q, Y=d)
    netlist.add_cell("DFF", D=d, CLK=clk, Q=q)
    netlist.add_output("q_out", q)
    return netlist


def _lockstep_assert(netlist, cycles=32, pokes=()):
    """Step both simulators in lockstep and compare every net every cycle."""
    ref = Simulator(netlist)
    fast = CompiledSimulator(netlist)
    for port, value in pokes:
        ref.poke(port, value)
        fast.poke(port, value)
    for cycle in range(cycles):
        ref.step()
        fast.step()
        for name, net in netlist.nets.items():
            assert ref.peek(net) == fast.peek(net), (
                f"net {name!r} diverged at cycle {cycle}"
            )
    for flop in netlist.sequential_cells():
        assert ref.flop_state(flop.name) == fast.flop_state(flop.name)


# ---------------------------------------------------------------------------
# Hand-built netlists
# ---------------------------------------------------------------------------

def test_toggle_flop_matches_reference():
    _lockstep_assert(_toggle_flop(), cycles=8)


def test_combinational_poke_settle_matches_reference():
    netlist = Netlist("comb")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y = netlist.new_net("y")
    netlist.add_cell("AND2", A=a, B=b, Y=y)
    netlist.add_output("y", y)
    ref, fast = Simulator(netlist), CompiledSimulator(netlist)
    for va, vb in [(1, 1), (1, 0), (0, 1), (0, 0), (1, 1)]:
        for sim in (ref, fast):
            sim.poke("a", va)
            sim.poke("b", vb)
            sim.settle()
        assert ref.peek("y") == fast.peek("y") == (va & vb)


def test_every_primitive_type_compiles_and_matches():
    """One instance of every combinational primitive, driven through all inputs."""
    from repro.hdl.primitives import PRIMITIVES

    netlist = Netlist("allprims")
    inputs = [netlist.add_input(f"i{n}") for n in range(4)]
    for cell_type, spec in PRIMITIVES.items():
        if spec.sequential:
            continue
        pins = {pin: inputs[i] for i, pin in enumerate(spec.inputs)}
        out = netlist.new_net(f"o_{cell_type.lower()}_")
        netlist.add_cell(cell_type, Y=out, **pins)
        netlist.add_output(f"y_{cell_type.lower()}", out)
    ref, fast = Simulator(netlist), CompiledSimulator(netlist)
    for value in range(16):
        for sim in (ref, fast):
            sim.poke_bus(Bus(inputs), value)
            sim.settle()
        for name in netlist.outputs:
            assert ref.peek(name) == fast.peek(name), (name, value)


def test_every_flop_type_matches():
    netlist = Netlist("allflops")
    clk = netlist.add_input("clk")
    d = netlist.add_input("d")
    en = netlist.add_input("en")
    rst = netlist.add_input("rst")
    netlist.add_cell("DFF", D=d, CLK=clk, Q=netlist.net("q_dff"))
    netlist.add_cell("DFF_RST", D=d, CLK=clk, RST=rst, Q=netlist.net("q_rst"))
    netlist.add_cell("DFF_SET", D=d, CLK=clk, SET=rst, Q=netlist.net("q_set"))
    netlist.add_cell("DFF_EN", D=d, CLK=clk, EN=en, Q=netlist.net("q_en"))
    netlist.add_cell(
        "DFF_EN_RST", D=d, CLK=clk, EN=en, RST=rst, Q=netlist.net("q_enrst")
    )
    netlist.add_cell(
        "DFF_EN_SET", D=d, CLK=clk, EN=en, SET=rst, Q=netlist.net("q_enset")
    )
    for name in ("q_dff", "q_rst", "q_set", "q_en", "q_enrst", "q_enset"):
        netlist.add_output(name, netlist.net(name))
    ref, fast = Simulator(netlist), CompiledSimulator(netlist)
    # Walk every input combination for a few cycles each.
    for combo in range(8):
        for sim in (ref, fast):
            sim.poke("d", combo & 1)
            sim.poke("en", (combo >> 1) & 1)
            sim.poke("rst", (combo >> 2) & 1)
            sim.step(2)
        for name in netlist.outputs:
            assert ref.peek(name) == fast.peek(name), (name, combo)


def test_step_keyword_ports_restore_matches_reference():
    netlist = Netlist("en")
    clk = netlist.add_input("clk")
    en = netlist.add_input("en")
    q = netlist.new_net("q")
    one = netlist.const(1)
    netlist.add_cell("DFF_EN", D=one, CLK=clk, EN=en, Q=q)
    netlist.add_output("q", q)
    ref, fast = Simulator(netlist), CompiledSimulator(netlist)
    for sim in (ref, fast):
        sim.step(en=1)
        assert sim.peek("q") == 1
        # The keyword drive does not persist past the call.
        assert sim.peek("en") == 0
        sim.step(3)
    assert ref.peek("q") == fast.peek("q")


def test_run_matches_step_and_counts_toggles():
    netlist = _toggle_flop()
    stepped = CompiledSimulator(netlist)
    stepped.step(6)
    ran = CompiledSimulator(netlist)
    ran.run(6)
    assert ran.cycle == stepped.cycle == 6
    assert ran.peek("q_out") == stepped.peek("q_out")
    counts = ran.toggle_counts()
    q_name = netlist.outputs["q_out"].name
    assert counts[q_name] == 6  # toggles every cycle
    ran.reset_toggles()
    assert ran.toggle_counts() == {}
    with pytest.raises(SimulationError):
        ran.run(-1)


def test_peek_onehot_and_flop_state_match_reference_api():
    netlist = Netlist("onehot")
    bits = netlist.add_input_bus("b", 4)
    netlist.add_output_bus("o", bits)
    sim = CompiledSimulator(netlist)
    sim.poke_bus(bits, 0)
    assert sim.peek_onehot(bits) is None
    sim.poke_bus(bits, 4)
    assert sim.peek_onehot(bits) == 2
    sim.poke_bus(bits, 5)
    with pytest.raises(SimulationError):
        sim.peek_onehot(bits)
    with pytest.raises(SimulationError):
        sim.flop_state("nope")


def test_error_paths_match_reference():
    netlist = _toggle_flop()
    other = Netlist("other")
    foreign = other.add_input("foreign")
    for sim in (Simulator(netlist), CompiledSimulator(netlist)):
        with pytest.raises(SimulationError):
            sim.poke("nonexistent", 1)
        with pytest.raises(SimulationError):
            sim.peek("nonexistent")
        with pytest.raises(SimulationError):
            sim.poke_bus(Bus([foreign]), 1)
        with pytest.raises(SimulationError):
            sim.peek_bus(Bus([foreign]))
        with pytest.raises(SimulationError):
            sim.peek(foreign)


# ---------------------------------------------------------------------------
# Property-style equivalence on every built-in workload
# ---------------------------------------------------------------------------

_GENERATORS = (("SRAG", "two-hot"), ("CntAG", "decoders"), ("FSM", "binary"))


@pytest.mark.parametrize("workload", available_workloads())
@pytest.mark.parametrize("style,variant", _GENERATORS)
def test_workload_addresses_and_toggles_bit_identical(workload, style, variant):
    """Address sequences and per-net toggle counts match on real designs."""
    pattern = build_pattern(workload, 8, 8)
    try:
        design = build_design(pattern, style, variant)
        netlist = design.netlist
    except Exception:
        pytest.skip(f"{style}[{variant}] not applicable to {workload}")
    cycles = min(pattern.to_sequence().length, 96)

    # Bit-identical value evolution (covers the emitted address bits).
    ref = Simulator(netlist)
    fast = CompiledSimulator(netlist)
    pokes = []
    if "reset" in netlist.inputs:
        pokes.append(("reset", 0))
    if "next" in netlist.inputs:
        pokes.append(("next", 1))
    for port, value in pokes:
        ref.poke(port, value)
        fast.poke(port, value)
    for cycle in range(cycles):
        ref.step()
        fast.step()
        for name, net in netlist.outputs.items():
            assert ref.peek(net) == fast.peek(net), (name, cycle)
    for name, net in netlist.nets.items():
        assert ref.peek(net) == fast.peek(net), name

    # Bit-identical toggle counts through the power estimator protocol.
    reference = estimate_power(netlist, cycles=cycles, engine="reference")
    compiled = estimate_power(netlist, cycles=cycles, engine="compiled")
    assert compiled.toggle_counts == reference.toggle_counts
    assert compiled.switching_energy_fj == reference.switching_energy_fj
    assert compiled.clock_energy_fj == reference.clock_energy_fj


@pytest.mark.parametrize("style,variant", _GENERATORS)
def test_run_sequence_matches_reference(style, variant):
    pattern = build_pattern("fifo", 4, 4)
    design = build_design(pattern, style, variant)
    netlist = design.netlist
    bus_nets = [netlist.outputs[name] for name in sorted(netlist.outputs)]
    bus = Bus(bus_nets)
    cycles = pattern.to_sequence().length
    assert CompiledSimulator(netlist).run_sequence(bus, cycles) == Simulator(
        netlist
    ).run_sequence(bus, cycles)
