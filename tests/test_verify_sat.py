"""Tests for the stdlib CDCL SAT solver (:mod:`repro.verify.sat`)."""

import itertools

import pytest

from repro.verify.sat import SatSolver, luby


# ---------------------------------------------------------------------------
# Brute-force cross-check
# ---------------------------------------------------------------------------

def _brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def _instances():
    """Deterministic pseudo-random 3-SAT instances (stdlib LCG, no random)."""
    state = 0x9E3779B97F4A7C15
    mask = (1 << 64) - 1
    for index in range(300):
        state = (state * 6364136223846793005 + 1442695040888963407) & mask
        num_vars = 3 + (state >> 32) % 6  # 3..8
        num_clauses = 2 + (state >> 16) % (3 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            clause = []
            for _ in range(3):
                state = (state * 6364136223846793005 + 1442695040888963407) & mask
                var = 1 + (state >> 32) % num_vars
                clause.append(var if (state >> 8) & 1 else -var)
            clauses.append(clause)
        yield index, num_vars, clauses


def test_solver_agrees_with_brute_force_on_300_instances():
    for index, num_vars, clauses in _instances():
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(clause)
        verdict = solver.solve()
        expected = _brute_force_sat(num_vars, clauses)
        assert verdict is expected, (index, num_vars, clauses)
        if verdict:
            # The model must actually satisfy every clause.
            model = solver.model
            assert all(
                any(model[abs(l)] == (l > 0) for l in clause)
                for clause in clauses
            ), (index, clauses, model)


def test_determinism_same_instance_same_stats():
    def run():
        solver = SatSolver()
        vars_ = [solver.new_var() for _ in range(6)]
        for a, b in itertools.combinations(vars_, 2):
            solver.add_clause([-a, -b])
        solver.add_clause(vars_[:3])
        assert solver.solve() is True
        return (solver.conflicts, solver.decisions, solver.propagations)

    assert run() == run()


# ---------------------------------------------------------------------------
# Structured instances
# ---------------------------------------------------------------------------

def test_pigeonhole_unsat():
    # PHP(4,3): 4 pigeons into 3 holes -- classically UNSAT, needs real
    # conflict analysis (pure DPLL thrashes).
    solver = SatSolver()
    var = {
        (p, h): solver.new_var() for p in range(4) for h in range(3)
    }
    for p in range(4):
        solver.add_clause([var[(p, h)] for h in range(3)])
    for h in range(3):
        for p1, p2 in itertools.combinations(range(4), 2):
            solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    assert solver.solve() is False


def test_empty_and_trivial_cases():
    solver = SatSolver()
    assert solver.solve() is True  # no vars, no clauses
    a = solver.new_var()
    solver.add_clause([a])
    assert solver.solve() is True
    assert solver.model[a] is True
    solver.add_clause([-a])
    assert solver.solve() is False
    # Once the formula is UNSAT at root it stays UNSAT.
    assert solver.solve() is False


def test_tautology_and_duplicate_literals_are_handled():
    solver = SatSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, -a, b])  # tautology: dropped
    solver.add_clause([b, b, b])  # deduped to unit
    assert solver.solve() is True
    assert solver.model[b] is True


# ---------------------------------------------------------------------------
# Assumptions + incremental use
# ---------------------------------------------------------------------------

def test_assumptions_do_not_stick():
    solver = SatSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve([-a]) is True
    assert solver.model[b] is True
    assert solver.solve([-b]) is True
    assert solver.model[a] is True
    assert solver.solve([-a, -b]) is False
    # And the formula itself is still satisfiable afterwards.
    assert solver.solve() is True


def test_incremental_clause_addition_between_solves():
    solver = SatSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b, c])
    assert solver.solve() is True
    solver.add_clause([-a])
    solver.add_clause([-b])
    assert solver.solve() is True
    assert solver.model[c] is True
    solver.add_clause([-c])
    assert solver.solve() is False


def test_contradictory_assumption_with_implied_chain():
    # Unit chains mean assumptions may be *implied* rather than decided;
    # the solver must still answer False only for genuine assumption
    # conflicts (regression guard for root-level tracking).
    solver = SatSolver()
    a, b, c, d = (solver.new_var() for _ in range(4))
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    assert solver.solve([a]) is True
    assert solver.model[c] is True
    assert solver.solve([a, -c]) is False
    assert solver.solve([d]) is True  # free var: trivially SAT


def test_conflict_limit_returns_none():
    # PHP(6,5) takes well over 5 conflicts; a tiny budget must yield an
    # inconclusive None, and a later unlimited call must still finish.
    solver = SatSolver()
    var = {(p, h): solver.new_var() for p in range(6) for h in range(5)}
    for p in range(6):
        solver.add_clause([var[(p, h)] for h in range(5)])
    for h in range(5):
        for p1, p2 in itertools.combinations(range(6), 2):
            solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    assert solver.solve(conflict_limit=5) is None
    assert solver.solve() is False


# ---------------------------------------------------------------------------
# Restart schedule
# ---------------------------------------------------------------------------

def test_luby_sequence_pin():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
    ]


def test_invalid_literals_are_rejected():
    solver = SatSolver()
    solver.new_var()
    with pytest.raises(ValueError):
        solver.add_clause([0])
    with pytest.raises(ValueError):
        solver.add_clause([2])  # never allocated
