"""AST linter: each rule fires on a broken fixture, suppression works, and
the CLI front ends (sradlint + the check_imports shim) honour their
output/exit contracts."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.ast_rules import (
    AST_RULES,
    ast_rule_catalogue,
    iter_python_files,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRADLINT = REPO_ROOT / "tools" / "sradlint.py"
CHECK_IMPORTS = REPO_ROOT / "tools" / "check_imports.py"

#: Virtual paths that put fixtures in (or out of) library-code scope.
LIB = "src/repro/service/fixture.py"
NON_LIB = "tools/fixture.py"


def _rules(findings):
    return {finding.rule for finding in findings}


def _lint(source, path=LIB):
    findings, suppressed = lint_source(textwrap.dedent(source), path=path)
    return findings, suppressed


def test_rule_catalogue_ids_are_stable():
    assert [entry[0] for entry in ast_rule_catalogue()] == [
        "ast.async-blocking",
        "ast.print-call",
        "ast.nondeterministic-key",
        "ast.mutable-default",
        "ast.dead-import",
        "ast.silent-except",
        "ast.bare-retry-loop",
    ]
    assert len(ast_rule_catalogue()) == len(AST_RULES)


# ---------------------------------------------------------------------------
# ast.async-blocking
# ---------------------------------------------------------------------------

def test_async_blocking_fires_on_sleep_and_subprocess():
    findings, _ = _lint(
        """
        import subprocess
        import time

        async def handler():
            time.sleep(1)
            subprocess.run(["true"])
            open("x")
        """
    )
    blocking = [f for f in findings if f.rule == "ast.async-blocking"]
    assert len(blocking) == 3
    assert all(f.severity == "error" for f in blocking)
    messages = " ".join(f.message for f in blocking)
    assert "time.sleep" in messages
    assert "subprocess.run" in messages
    assert "open" in messages


def test_async_blocking_ignores_nested_sync_defs_and_async_sleep():
    findings, _ = _lint(
        """
        import asyncio
        import time

        async def handler():
            await asyncio.sleep(1)

            def pump():
                time.sleep(0.1)  # its own (synchronous) execution context

            return pump
        """
    )
    assert "ast.async-blocking" not in _rules(findings)


def test_async_blocking_is_scoped_to_library_code():
    source = """
    import time

    async def handler():
        time.sleep(1)
    """
    findings, _ = _lint(source, path=NON_LIB)
    assert "ast.async-blocking" not in _rules(findings)
    findings, _ = _lint(source, path=LIB)
    assert "ast.async-blocking" in _rules(findings)


# ---------------------------------------------------------------------------
# ast.print-call
# ---------------------------------------------------------------------------

def test_print_call_fires_in_library_code_only():
    source = 'print("hello")\n'
    findings, _ = lint_source(source, path="src/repro/synth/foo.py")
    assert "ast.print-call" in _rules(findings)
    # The CLI front end and non-library trees may print freely.
    for path in ("src/repro/cli.py", "tools/bench.py", "tests/test_x.py"):
        findings, _ = lint_source(source, path=path)
        assert "ast.print-call" not in _rules(findings), path


# ---------------------------------------------------------------------------
# ast.nondeterministic-key
# ---------------------------------------------------------------------------

def test_nondeterministic_key_fires_in_key_functions():
    findings, _ = _lint(
        """
        import random
        import time

        def cache_key(job):
            return hash((job, time.time()))

        def library_fingerprint(lib):
            return random.random()
        """
    )
    hits = [f for f in findings if f.rule == "ast.nondeterministic-key"]
    assert len(hits) == 2
    assert "time.time" in hits[0].message


def test_nondeterministic_key_ignores_non_key_functions():
    findings, _ = _lint(
        """
        import time

        def measure_elapsed():
            return time.time()
        """
    )
    assert "ast.nondeterministic-key" not in _rules(findings)


# ---------------------------------------------------------------------------
# ast.mutable-default
# ---------------------------------------------------------------------------

def test_mutable_default_fires_everywhere():
    findings, _ = _lint(
        """
        def f(items=[]):
            return items

        def g(table={}, *, tags=set()):
            return table, tags

        def ok(items=None, n=3, name="x"):
            return items
        """,
        path=NON_LIB,  # unscoped: fires outside library code too
    )
    hits = [f for f in findings if f.rule == "ast.mutable-default"]
    assert len(hits) == 3


# ---------------------------------------------------------------------------
# ast.dead-import
# ---------------------------------------------------------------------------

def test_dead_import_fires_and_respects_all_and_attribute_roots():
    findings, _ = _lint(
        """
        from __future__ import annotations

        import json
        import os
        import sys as system
        from typing import List

        __all__ = ["List"]

        def use():
            return os.path.sep
        """,
        path=NON_LIB,
    )
    hits = [f for f in findings if f.rule == "ast.dead-import"]
    # json unused, system unused; os used via attribute root, List via __all__.
    assert sorted(f.message for f in hits) == [
        "unused import: import json (as json)",
        "unused import: import sys (as system)",
    ]


# ---------------------------------------------------------------------------
# ast.silent-except
# ---------------------------------------------------------------------------

def test_silent_except_fires_on_pass_and_ellipsis_bodies():
    findings, _ = _lint(
        """
        def f():
            try:
                work()
            except ValueError:
                pass
            try:
                work()
            except (OSError, KeyError):
                ...
            try:
                work()
            except:
                pass
        """
    )
    hits = [f for f in findings if f.rule == "ast.silent-except"]
    assert len(hits) == 3
    assert "except ValueError" in hits[0].message
    assert "except (OSError, KeyError)" in hits[1].message
    assert "except BaseException" in hits[2].message  # bare except


def test_silent_except_quiet_on_handled_bodies_and_non_library_code():
    findings, _ = _lint(
        """
        def f():
            try:
                work()
            except ValueError:
                log("recovered")
            except OSError as error:
                raise RuntimeError("wrapped") from error
        """
    )
    assert "ast.silent-except" not in _rules(findings)
    # Scoped rule: the same silent handler outside src/repro/ is fine
    # (tests legitimately probe error paths with pass bodies).
    findings, _ = _lint(
        """
        try:
            work()
        except ValueError:
            pass
        """,
        path=NON_LIB,
    )
    assert "ast.silent-except" not in _rules(findings)


def test_silent_except_per_line_disable_honoured():
    findings, suppressed = _lint(
        """
        def f():
            try:
                work()
            except ValueError:  # sradlint: disable=ast.silent-except -- probe
                pass
        """
    )
    assert "ast.silent-except" not in _rules(findings)
    assert suppressed == 1


# ---------------------------------------------------------------------------
# Suppression + syntax errors
# ---------------------------------------------------------------------------

def test_line_suppression_by_rule_id_and_all():
    findings, suppressed = _lint(
        """
        print("a")  # sradlint: disable=ast.print-call -- test fixture
        print("b")  # sradlint: disable=all
        print("c")
        """,
        path="src/repro/synth/foo.py",
    )
    assert suppressed == 2
    hits = [f for f in findings if f.rule == "ast.print-call"]
    assert len(hits) == 1
    assert hits[0].line == 4


def test_suppression_for_a_different_rule_does_not_apply():
    findings, suppressed = _lint(
        'print("a")  # sradlint: disable=ast.dead-import\n',
        path="src/repro/synth/foo.py",
    )
    assert suppressed == 0
    assert "ast.print-call" in _rules(findings)


def test_syntax_error_is_reported_as_error_finding():
    findings, _ = _lint("def broken(:\n", path=NON_LIB)
    assert len(findings) == 1
    assert findings[0].rule == "ast.syntax-error"
    assert findings[0].severity == "error"
    assert "syntax error" in findings[0].message


# ---------------------------------------------------------------------------
# Directory walking + report assembly
# ---------------------------------------------------------------------------

def test_lint_paths_walks_and_aggregates(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text("def f(x=[]):\n    return x\n")
    (tmp_path / "pkg" / "good.py").write_text("VALUE = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    report = lint_paths([str(tmp_path)])
    assert report.checked == 2
    assert report.has_errors
    assert _rules(report.findings) == {"ast.mutable-default"}
    files = list(iter_python_files([str(tmp_path)]))
    assert len(files) == 2


# ---------------------------------------------------------------------------
# tools/sradlint.py CLI contract
# ---------------------------------------------------------------------------

def _run(script, *args, cwd=None):
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        cwd=cwd or str(REPO_ROOT),
    )


def test_sradlint_exits_nonzero_on_error_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    proc = _run(SRADLINT, str(bad))
    assert proc.returncode == 1
    assert "ast.mutable-default" in proc.stdout
    assert "1 error(s)" in proc.stderr


def test_sradlint_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")
    proc = _run(SRADLINT, str(good))
    assert proc.returncode == 0
    assert "0 error(s)" in proc.stderr


def test_sradlint_json_format_and_output_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    out = tmp_path / "report.json"
    proc = _run(SRADLINT, "--format", "json", "--output", str(out), str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["errors"] == 1
    assert payload["findings"][0]["rule"] == "ast.mutable-default"
    assert json.loads(out.read_text()) == payload


def test_sradlint_list_rules_and_rule_filter(tmp_path):
    proc = _run(SRADLINT, "--list-rules")
    assert proc.returncode == 0
    for rule in AST_RULES:
        assert rule.id in proc.stdout
    # --rule filters: a mutable default is invisible to the dead-import rule.
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    proc = _run(SRADLINT, "--rule", "ast.dead-import", str(bad))
    assert proc.returncode == 0


# ---------------------------------------------------------------------------
# tools/check_imports.py shim contract (CI depends on this exact format)
# ---------------------------------------------------------------------------

def test_check_imports_shim_output_and_exit_status(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import os\n\nVALUE = 1\n")
    proc = _run(CHECK_IMPORTS, str(bad))
    assert proc.returncode == 1
    assert proc.stdout.splitlines() == [
        f"{bad}:1: unused import: import os (as os)"
    ]
    assert proc.stderr.strip() == "check_imports: 1 files, 1 finding(s)"


def test_check_imports_shim_clean_exit(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("import os\n\nSEP = os.sep\n")
    proc = _run(CHECK_IMPORTS, str(good))
    assert proc.returncode == 0
    assert proc.stdout == ""
    assert proc.stderr.strip() == "check_imports: 1 files, 0 finding(s)"


def test_check_imports_shim_honours_suppression(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import os  # sradlint: disable=ast.dead-import\n")
    proc = _run(CHECK_IMPORTS, str(bad))
    assert proc.returncode == 0
    assert proc.stderr.strip() == "check_imports: 1 files, 0 finding(s)"


def test_repo_tree_is_clean_under_both_linters():
    """The satellite invariant: the tree itself has no violations."""
    proc = _run(SRADLINT, "src", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    proc = _run(CHECK_IMPORTS, "src", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr
