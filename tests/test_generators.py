"""Tests for the baseline address-generator architectures."""

import pytest

from repro.generators import (
    ArithmeticAddressGenerator,
    CounterBasedAddressGenerator,
    FsmAddressGenerator,
    SfmPointerGenerator,
    SragDesign,
)
from repro.hdl.netlist import NetlistError
from repro.workloads import dct, fifo, motion_estimation, zoom
from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop


# ---------------------------------------------------------------------------
# CntAG
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "pattern_factory",
    [
        lambda: motion_estimation.new_img_read_pattern(8, 8, 2, 2),
        lambda: motion_estimation.new_img_write_pattern(4, 4),
        lambda: dct.column_pass_pattern(4, 4),
        lambda: zoom.zoom_read_pattern(4, 4, 2),
    ],
)
def test_cntag_generates_the_right_addresses(pattern_factory):
    pattern = pattern_factory()
    assert CounterBasedAddressGenerator(pattern).verify()


def test_cntag_adder_and_concatenation_variants_agree():
    pattern = motion_estimation.new_img_read_pattern(8, 8, 2, 2)
    concat = CounterBasedAddressGenerator(pattern, use_concatenation=True)
    adders = CounterBasedAddressGenerator(pattern, use_concatenation=False)
    assert concat.simulate(32) == adders.simulate(32)
    # The adder-based variant carries extra logic.
    assert adders.synthesize().area_cells > concat.synthesize().area_cells


def test_cntag_without_decoders_has_no_select_lines():
    pattern = dct.column_pass_pattern(4, 4)
    design = CounterBasedAddressGenerator(pattern, include_decoders=False)
    assert design.verify()
    assert not any(name.startswith("rs_") for name in design.netlist.outputs)


def test_cntag_decoder_outputs_are_select_lines():
    pattern = fifo.fifo_pattern(4, 4)
    design = CounterBasedAddressGenerator(pattern)
    outputs = design.netlist.outputs
    assert sum(1 for name in outputs if name.startswith("rs_")) == 4
    assert sum(1 for name in outputs if name.startswith("cs_")) == 4


def test_cntag_component_reports_and_paper_delay():
    pattern = motion_estimation.new_img_read_pattern(16, 16, 2, 2)
    design = CounterBasedAddressGenerator(pattern)
    components = design.component_reports()
    assert set(components) == {"counter", "row_decoder", "column_decoder"}
    total = design.paper_methodology_delay()
    assert total == pytest.approx(
        components["counter"].delay_ns
        + max(components["row_decoder"].delay_ns, components["column_decoder"].delay_ns)
    )
    assert total > components["counter"].delay_ns


def test_cntag_rejects_non_unit_stride_and_negative_coefficients():
    bad_stride = AffineAccessPattern(
        name="bad",
        loops=[Loop("i", 0, 8, step=2)],
        row_expr=AffineExpression.build({"i": 1}),
        col_expr=AffineExpression.build({}),
        rows=8,
        cols=1,
    )
    with pytest.raises(NetlistError):
        CounterBasedAddressGenerator(bad_stride)

    negative = AffineAccessPattern(
        name="neg",
        loops=[Loop("i", 0, 4)],
        row_expr=AffineExpression.build({"i": -1}, constant=3),
        col_expr=AffineExpression.build({}),
        rows=4,
        cols=1,
    )
    with pytest.raises(NetlistError):
        CounterBasedAddressGenerator(negative).elaborate()


def test_cntag_affine_constant_offset():
    pattern = AffineAccessPattern(
        name="offset",
        loops=[Loop("i", 0, 4)],
        row_expr=AffineExpression.build({"i": 1}, constant=2),
        col_expr=AffineExpression.build({}, constant=1),
        rows=8,
        cols=4,
    )
    design = CounterBasedAddressGenerator(pattern)
    assert design.simulate(4) == [2 * 4 + 1, 3 * 4 + 1, 4 * 4 + 1, 5 * 4 + 1]


# ---------------------------------------------------------------------------
# Arithmetic generator
# ---------------------------------------------------------------------------

def test_arithmetic_generator_constant_stride():
    design = ArithmeticAddressGenerator(fifo.fifo_sequence(4, 4))
    assert design.distinct_strides == [1]
    assert design.verify()


def test_arithmetic_generator_variable_stride():
    sequence = motion_estimation.read_sequence(4, 4, 2, 2)
    design = ArithmeticAddressGenerator(sequence)
    assert len(design.distinct_strides) > 1
    assert design.verify()


def test_arithmetic_generator_with_decoders():
    design = ArithmeticAddressGenerator(fifo.fifo_sequence(4, 4), include_decoders=True)
    assert any(name.startswith("rs_") for name in design.netlist.outputs)
    assert design.verify()


def test_arithmetic_generator_requires_power_of_two_array():
    sequence = fifo.fifo_sequence(3, 3)
    with pytest.raises(NetlistError):
        ArithmeticAddressGenerator(sequence)


# ---------------------------------------------------------------------------
# FSM generator
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("output_style", ["select_lines", "two_hot", "binary"])
def test_fsm_generator_output_styles(output_style):
    sequence = motion_estimation.read_sequence(4, 4, 2, 2)
    design = FsmAddressGenerator(sequence, encoding="binary", output_style=output_style)
    assert design.verify()


def test_fsm_generator_invalid_style():
    with pytest.raises(ValueError):
        FsmAddressGenerator(fifo.fifo_sequence(2, 2), output_style="gray_code")


def test_fsm_generator_exposes_synthesis_stats():
    design = FsmAddressGenerator(fifo.incremental_sequence(8))
    result = design.fsm_synthesis
    assert result.state_width == 3
    assert result.stats.minterms > 0


# ---------------------------------------------------------------------------
# SFM generator
# ---------------------------------------------------------------------------

def test_sfm_generator_incremental_only():
    assert SfmPointerGenerator(fifo.incremental_sequence(8)).verify()
    with pytest.raises(NetlistError):
        SfmPointerGenerator(motion_estimation.read_sequence(4, 4, 2, 2))


def test_sfm_generator_has_two_pointer_registers():
    design = SfmPointerGenerator(fifo.incremental_sequence(6))
    flops = design.netlist.sequential_cells()
    assert len(flops) == 12  # head + tail, one flip-flop per cell


# ---------------------------------------------------------------------------
# Common interface behaviour
# ---------------------------------------------------------------------------

def test_designs_share_the_common_interface():
    sequence = fifo.fifo_sequence(4, 4)
    pattern = fifo.fifo_pattern(4, 4)
    designs = [
        SragDesign(sequence),
        CounterBasedAddressGenerator(pattern),
        ArithmeticAddressGenerator(sequence),
        FsmAddressGenerator(sequence, output_style="two_hot"),
        SfmPointerGenerator(fifo.incremental_sequence(16)),
    ]
    for design in designs:
        result = design.synthesize(metadata={"test": True})
        assert result.delay_ns > 0
        assert result.area_cells > 0
        assert result.metadata["style"] == design.style
        assert result.metadata["test"] is True


def test_netlist_cache_and_invalidate():
    design = SragDesign(fifo.fifo_sequence(4, 4))
    first = design.netlist
    assert design.netlist is first
    design.invalidate()
    assert design.netlist is not first


def test_srag_design_exposes_mappings():
    design = SragDesign(motion_estimation.read_sequence(4, 4, 2, 2))
    assert design.generator.row_mapping.div_count == 2
    assert design.generator.col_mapping.div_count == 1
