"""Exhaustive cross-model oracle over every registered primitive.

Three independent models of each cell exist in the codebase: the reference
``eval_fn`` (dict-based), the compiled-simulator closures
(:func:`compile_comb` / :func:`compile_flop`) and the CNF truth tables the
verifier encodes (:mod:`repro.verify.cnf`).  CEC results are only as
trustworthy as their agreement, so this module brute-forces all of them
against each other over *every* pin assignment -- at most 2**4 = 16 rows per
primitive, so the sweep is exhaustive, not sampled.
"""

import itertools

import pytest

from repro.hdl.primitives import (
    PRIMITIVES,
    combinational_eval,
    compile_comb,
    compile_flop,
    flop_next_state,
)
from repro.verify.cnf import comb_rows, flop_rows

COMB_TYPES = sorted(t for t, s in PRIMITIVES.items() if not s.sequential)
FLOP_TYPES = sorted(t for t, s in PRIMITIVES.items() if s.sequential)


def _assignments(names):
    for bits in itertools.product((0, 1), repeat=len(names)):
        yield dict(zip(names, bits)), bits


@pytest.mark.parametrize("cell_type", COMB_TYPES)
def test_compiled_comb_matches_eval_fn_exhaustively(cell_type):
    spec = PRIMITIVES[cell_type]
    assert len(spec.inputs) <= 4  # keeps the exhaustive sweep exhaustive
    out = spec.outputs[0]
    fn = compile_comb(cell_type, range(len(spec.inputs)))
    for pins, bits in _assignments(spec.inputs):
        assert fn(list(bits)) == combinational_eval(cell_type, pins)[out], (
            f"{cell_type}: compiled model disagrees with eval_fn at {pins}"
        )


@pytest.mark.parametrize("cell_type", FLOP_TYPES)
def test_compiled_flop_matches_eval_fn_exhaustively(cell_type):
    spec = PRIMITIVES[cell_type]
    data_pins = [p for p in spec.inputs if p != "CLK"]
    fn = compile_flop(cell_type, {p: i for i, p in enumerate(data_pins)})
    for pins, bits in _assignments(data_pins):
        for q in (0, 1):
            reference = flop_next_state(
                cell_type, dict(pins, CLK=0, Q=q)
            )
            assert fn(list(bits), q) == reference, (
                f"{cell_type}: compiled model disagrees with eval_fn "
                f"at {pins}, Q={q}"
            )


@pytest.mark.parametrize("cell_type", COMB_TYPES)
def test_cnf_comb_rows_match_eval_fn_exhaustively(cell_type):
    spec = PRIMITIVES[cell_type]
    out = spec.outputs[0]
    table = dict(comb_rows(cell_type))
    assert len(table) == 2 ** len(spec.inputs)
    for pins, bits in _assignments(spec.inputs):
        assert table[bits] == combinational_eval(cell_type, pins)[out], (
            f"{cell_type}: CNF truth table disagrees with eval_fn at {pins}"
        )


@pytest.mark.parametrize("cell_type", FLOP_TYPES)
def test_cnf_flop_rows_match_eval_fn_exhaustively(cell_type):
    spec = PRIMITIVES[cell_type]
    data_pins = [p for p in spec.inputs if p != "CLK"]
    pin_names = tuple(data_pins) + ("Q",)
    table = dict(flop_rows(cell_type, pin_names))
    assert len(table) == 2 ** len(pin_names)
    for pins, bits in _assignments(pin_names):
        reference = flop_next_state(cell_type, dict(pins, CLK=0))
        assert table[bits] == reference, (
            f"{cell_type}: CNF next-state table disagrees with eval_fn "
            f"at {pins}"
        )
