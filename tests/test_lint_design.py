"""Design-rule checker: every rule fires on a broken fixture, and the full
style x workload grid comes up clean at O0 and O1 (a pinned invariant)."""

import dataclasses

import pytest

from repro.core.mapping_params import MappingError
from repro.engine.jobs import STYLE_VARIANTS, build_design
from repro.flow import FlowSpec
from repro.hdl.netlist import Cell, Net, Netlist, NetlistError
from repro.lint.design import (
    DESIGN_RULES,
    SAT_DESIGN_RULES,
    design_rule_catalogue,
    lint_netlist,
    lint_netlist_if_enabled,
    rules_for_level,
)
from repro.synth.cell_library import get_library
from repro.synth.fsm import FiniteStateMachine
from repro.workloads.registry import available_workloads, build_pattern


def _rules(report):
    return {finding.rule for finding in report.findings}


def _clean_netlist():
    """A minimal structurally sound design: in -> INV -> DFF -> out."""
    nl = Netlist("clean")
    a = nl.add_input("a")
    clk = nl.add_input("clk")
    inv_out = nl.new_net("inv_out")
    nl.add_cell("INV", A=a, Y=inv_out)
    q = nl.new_net("q")
    nl.add_cell("DFF", D=inv_out, CLK=clk, Q=q)
    nl.add_output("y", q)
    return nl


# ---------------------------------------------------------------------------
# Clean baseline
# ---------------------------------------------------------------------------

def test_clean_netlist_has_zero_findings():
    report = lint_netlist(
        _clean_netlist(), library=get_library("std018"), max_fanout=8
    )
    assert report.findings == []
    assert not report.has_errors
    assert report.checked > 0
    assert report.target == "clean"


def test_rule_catalogue_ids_are_stable():
    catalogue = design_rule_catalogue()
    assert [entry[0] for entry in catalogue] == [
        "design.comb-loop",
        "design.undriven-net",
        "design.multi-driven",
        "design.floating-input",
        "design.dangling-net",
        "design.unknown-cell",
        "design.fanout-limit",
        "design.missing-clock",
        "design.data-on-clk",
        "design.fsm-unreachable",
        "design.sat-const-net",
        "design.sat-redundant-logic",
    ]
    assert all(entry[1] in ("error", "warning", "info") for entry in catalogue)
    assert all(entry[2] for entry in catalogue)
    assert len(catalogue) == len(DESIGN_RULES) + 2


# ---------------------------------------------------------------------------
# Each rule fires on a deliberately broken fixture
# ---------------------------------------------------------------------------

def test_comb_loop_fires():
    nl = Netlist("loopy")
    a = nl.new_net("a")
    b = nl.new_net("b")
    # Two inverters in a ring: legal to build (each output net is undriven at
    # add time), impossible to evaluate.
    nl.add_cell("INV", name="u1", A=a, Y=b)
    nl.add_cell("INV", name="u2", A=b, Y=a)
    with pytest.raises(NetlistError):
        nl.topological_combinational_order()
    report = lint_netlist(nl)
    assert "design.comb-loop" in _rules(report)
    assert report.has_errors


def test_undriven_net_fires_for_cell_input_and_output_port():
    nl = Netlist("undriven")
    floating = nl.new_net("floating")
    y = nl.new_net("y")
    nl.add_cell("INV", A=floating, Y=y)
    nl.add_output("out", nl.new_net("unbacked"))
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.undriven-net"]
    messages = " ".join(f.message for f in findings)
    assert "floating" in messages
    assert "unbacked" in messages


def test_multi_driven_fires():
    nl = Netlist("multi")
    a = nl.add_input("a")
    n1 = nl.new_net("n1")
    n2 = nl.new_net("n2")
    nl.add_cell("INV", name="u1", A=a, Y=n1)
    u2 = nl.add_cell("INV", name="u2", A=a, Y=n2)
    # Corrupt: re-point u2's output at n1 behind the netlist's back.
    u2.pins["Y"] = n1
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.multi-driven"]
    assert len(findings) == 1
    assert "u1.Y" in findings[0].message and "u2.Y" in findings[0].message


def test_multi_driven_fires_for_driven_input_port():
    nl = Netlist("portdrive")
    a = nl.add_input("a")
    b = nl.add_input("b")
    n1 = nl.new_net("n1")
    u1 = nl.add_cell("INV", name="u1", A=b, Y=n1)
    u1.pins["Y"] = a  # corrupt: cell output shorted onto an input port
    report = lint_netlist(nl)
    messages = [
        f.message for f in report.findings if f.rule == "design.multi-driven"
    ]
    assert any("input port" in message for message in messages)


def test_floating_input_fires_for_unconnected_pin():
    nl = Netlist("floating")
    a = nl.add_input("a")
    y = nl.new_net("y")
    cell = nl.add_cell("INV", name="u1", A=a, Y=y)
    del cell.pins["A"]  # corrupt: disconnect the declared input
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.floating-input"]
    assert findings and "u1.A" in findings[0].message


def test_floating_input_fires_for_stale_net_reference():
    nl = Netlist("stale")
    a = nl.add_input("a")
    y = nl.new_net("y")
    cell = nl.add_cell("INV", name="u1", A=a, Y=y)
    cell.pins["A"] = Net(name="ghost")  # a net the netlist never owned
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.floating-input"]
    assert findings and "ghost" in findings[0].message


def test_dangling_net_fires_on_prune_criterion_only():
    nl = _clean_netlist()
    nl.net("orphan")  # no driver, no loads, no port role
    # A driven-but-unused net (dead logic) must NOT be flagged.
    unused = nl.new_net("unused_out")
    nl.add_cell("INV", A=nl.inputs["a"], Y=unused)
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.dangling-net"]
    assert len(findings) == 1
    assert "orphan" in findings[0].message
    assert findings[0].severity == "warning"
    assert not report.has_errors


def test_unknown_cell_fires_for_unknown_primitive():
    nl = _clean_netlist()
    nl._cells["u_bogus"] = Cell(name="u_bogus", cell_type="MYSTERY", pins={})
    report = lint_netlist(nl, library=get_library("std018"))
    findings = [f for f in report.findings if f.rule == "design.unknown-cell"]
    assert findings and "MYSTERY" in findings[0].message


def test_unknown_cell_fires_for_uncharacterised_type():
    nl = _clean_netlist()
    std = get_library("std018")
    gutted = dataclasses.replace(
        std, cells={k: v for k, v in std.cells.items() if k != "INV"}
    )
    report = lint_netlist(nl, library=gutted)
    findings = [f for f in report.findings if f.rule == "design.unknown-cell"]
    assert findings and "not characterised" in findings[0].message


def test_fanout_limit_fires_and_ignores_clk_loads():
    nl = Netlist("fan")
    a = nl.add_input("a")
    clk = nl.add_input("clk")
    hot = nl.new_net("hot")
    nl.add_cell("INV", A=a, Y=hot)
    for i in range(3):
        nl.add_cell("INV", name=f"load{i}", A=hot, Y=nl.new_net(f"o{i}"))
    # CLK fanout is free (clock network is distributed separately): many
    # flops on one clock must not trip the rule.
    for i in range(8):
        nl.add_cell("DFF", name=f"ff{i}", D=hot, CLK=clk, Q=nl.new_net(f"q{i}"))
    report = lint_netlist(nl, max_fanout=4)
    findings = [f for f in report.findings if f.rule == "design.fanout-limit"]
    # hot has 3 INV + 8 DFF D-loads = 11 data loads; clk has 8 CLK loads = 0.
    assert len(findings) == 1
    assert "hot" in findings[0].message
    assert lint_netlist(nl, max_fanout=11).findings == []


def test_missing_clock_fires_for_disconnected_and_undriven_clk():
    nl = Netlist("clockless")
    a = nl.add_input("a")
    ff = nl.add_cell("DFF", name="ff0", D=a, CLK=nl.add_input("clk"), Q=nl.new_net("q"))
    del ff.pins["CLK"]
    nl.add_cell("DFF", name="ff1", D=a, CLK=nl.new_net("dead_clk"), Q=nl.new_net("q1"))
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.missing-clock"]
    messages = " ".join(f.message for f in findings)
    assert "ff0" in messages and "no CLK connection" in messages
    assert "ff1" in messages and "dead_clk" in messages


def test_data_on_clk_fires_for_gated_clock():
    nl = Netlist("gated")
    a = nl.add_input("a")
    derived = nl.new_net("derived_clk")
    nl.add_cell("INV", name="u_gate", A=a, Y=derived)
    nl.add_cell("DFF", name="ff0", D=a, CLK=derived, Q=nl.new_net("q"))
    report = lint_netlist(nl)
    findings = [f for f in report.findings if f.rule == "design.data-on-clk"]
    assert len(findings) == 1
    assert "u_gate.Y" in findings[0].message
    assert report.has_errors


def test_fsm_unreachable_fires_and_reachable_is_clean():
    broken = FiniteStateMachine(
        name="fsm",
        num_states=3,
        next_state=[1, 0, 2],  # state 2 is orphaned from reset state 0
        outputs=[(0,), (1,), (0,)],
    )
    report = lint_netlist(_clean_netlist(), fsm=broken)
    findings = [f for f in report.findings if f.rule == "design.fsm-unreachable"]
    assert len(findings) == 1
    assert "state(s) unreachable" in findings[0].message
    cyclic = FiniteStateMachine(
        name="fsm", num_states=3, next_state=[1, 2, 0], outputs=[(0,), (1,), (0,)]
    )
    assert lint_netlist(_clean_netlist(), fsm=cyclic).findings == []


def test_suppression_drops_findings_and_counts_them():
    nl = _clean_netlist()
    nl.net("orphan")
    report = lint_netlist(nl, suppress=("design.dangling-net",))
    assert report.findings == []
    assert report.suppressed == 1


def test_lint_never_mutates_the_netlist():
    nl = _clean_netlist()
    nl.net("orphan")
    before = (sorted(nl.nets), sorted(nl.cells))
    lint_netlist(nl, library=get_library("std018"), max_fanout=8)
    assert (sorted(nl.nets), sorted(nl.cells)) == before


def test_lint_netlist_if_enabled_gates_on_spec():
    nl = _clean_netlist()
    assert lint_netlist_if_enabled(nl, FlowSpec()) is None
    report = lint_netlist_if_enabled(nl, FlowSpec(lint=1))
    assert report is not None and report.findings == []


# ---------------------------------------------------------------------------
# SAT-backed rules (lint level >= 2)
# ---------------------------------------------------------------------------

def test_rules_for_level_gates_the_sat_tier():
    assert rules_for_level(1) == DESIGN_RULES
    assert rules_for_level(2) == DESIGN_RULES + SAT_DESIGN_RULES
    assert rules_for_level(7) == DESIGN_RULES + SAT_DESIGN_RULES


def test_sat_const_net_fires_on_provable_constant_and_reports_only_roots():
    nl = Netlist("constcase")
    a = nl.add_input("a")
    y = nl.new_net("y")
    out = nl.new_net("out")
    # XOR(a, a) == 0 no matter what; the downstream INV is then constant
    # too, but only the cone root must be reported.
    nl.add_cell("XOR2", name="u1", A=a, B=a, Y=y)
    nl.add_cell("INV", name="u2", A=y, Y=out)
    nl.add_output("out", out)
    report = lint_netlist(nl, rules=rules_for_level(2))
    hits = [f for f in report.findings if f.rule == "design.sat-const-net"]
    assert len(hits) == 1
    assert hits[0].severity == "warning"
    assert "constant 0" in hits[0].message and repr(y.name) in hits[0].message


def test_sat_const_net_quiet_on_deliberately_tied_logic():
    nl = Netlist("tiecase")
    a = nl.add_input("a")
    t0 = nl.new_net("t0")
    y = nl.new_net("y")
    nl.add_cell("TIE0", name="t", Y=t0)
    nl.add_cell("AND2", name="u1", A=a, B=t0, Y=y)
    nl.add_output("y", y)
    report = lint_netlist(nl, rules=rules_for_level(2))
    assert not [f for f in report.findings if f.rule.startswith("design.sat")]


def test_sat_redundant_logic_fires_on_semantic_duplicate_only():
    nl = Netlist("redundant")
    a = nl.add_input("a")
    b = nl.add_input("b")
    n1, n2, n3 = nl.new_net("n1"), nl.new_net("n2"), nl.new_net("n3")
    # NAND2(a, b) == INV(AND2(a, b)): different structure, same function.
    nl.add_cell("NAND2", name="u1", A=a, B=b, Y=n1)
    nl.add_cell("AND2", name="u2", A=a, B=b, Y=n2)
    nl.add_cell("INV", name="u3", A=n2, Y=n3)
    nl.add_output("o1", n1)
    nl.add_output("o2", n3)
    report = lint_netlist(nl, rules=rules_for_level(2))
    hits = [
        f for f in report.findings if f.rule == "design.sat-redundant-logic"
    ]
    assert len(hits) == 1
    assert hits[0].severity == "info"
    assert "u1" in hits[0].message and "u3" in hits[0].message


def test_sat_rules_skipped_at_level_one():
    nl = Netlist("constcase")
    a = nl.add_input("a")
    y = nl.new_net("y")
    nl.add_cell("XOR2", name="u1", A=a, B=a, Y=y)
    nl.add_output("y", y)
    report = lint_netlist(nl, rules=rules_for_level(1))
    assert not [f for f in report.findings if f.rule.startswith("design.sat")]


# ---------------------------------------------------------------------------
# Pinned invariant: the whole built-in grid lints clean at O0 and O1
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("opt_level", [0, 1])
def test_clean_sweep_every_style_and_workload(opt_level):
    """Every synthesised built-in design passes design lint with 0 findings.

    Inapplicable (workload, architecture) pairs are skipped exactly the way
    the campaign engine skips them.
    """
    spec = FlowSpec(opt_level=opt_level, lint=1)
    checked = 0
    for workload in available_workloads():
        pattern = build_pattern(workload, 4, 4)
        for style, variant in STYLE_VARIANTS:
            try:
                design = build_design(pattern, style, variant)
                result = design.synthesize(spec=spec)
            except (MappingError, NetlistError, ValueError):
                continue  # architecture not applicable to this workload
            report = result.lint_report
            assert report is not None
            assert report.findings == [], (
                f"{workload} {style}[{variant}] O{opt_level}: "
                f"{report.render()}"
            )
            checked += 1
    # The grid must not silently degenerate (most pairs are applicable).
    assert checked >= 40
