"""Unit tests for the structural component builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.components import (
    build_and_tree,
    build_binary_counter,
    build_decoder,
    build_equality_comparator,
    build_incrementer,
    build_mux_tree,
    build_or_tree,
    build_register,
    build_ripple_adder,
    build_token_shift_register,
)
from repro.hdl.components.adder import build_lookahead_incrementer
from repro.hdl.components.counter import counter_width
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.simulator import Simulator


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("modulus", [2, 3, 5, 6, 8, 13, 16])
def test_counter_counts_modulo(modulus):
    netlist = Netlist("cnt")
    clk = netlist.add_input("clk")
    en = netlist.add_input("next")
    counter = build_binary_counter(netlist, modulus, clk, enable=en)
    netlist.add_output_bus("c", counter.count)
    sim = Simulator(netlist)
    sim.poke("next", 1)
    values = sim.run_sequence(counter.count, 2 * modulus + 3, next_port=None)
    expected = [i % modulus for i in range(2 * modulus + 3)]
    assert values == expected


def test_counter_enable_holds():
    netlist = Netlist("cnt")
    clk = netlist.add_input("clk")
    en = netlist.add_input("next")
    counter = build_binary_counter(netlist, 4, clk, enable=en)
    netlist.add_output_bus("c", counter.count)
    sim = Simulator(netlist)
    sim.step(next=1)
    sim.step(next=0)
    sim.step(next=0)
    assert sim.peek_bus(counter.count) == 1


def test_counter_terminal_count_signal():
    netlist = Netlist("cnt")
    clk = netlist.add_input("clk")
    counter = build_binary_counter(netlist, 3, clk)
    netlist.add_output("tc", counter.terminal_count)
    sim = Simulator(netlist)
    seen = []
    for _ in range(6):
        sim.settle()
        seen.append(sim.peek("tc"))
        sim.step()
    assert seen == [0, 0, 1, 0, 0, 1]


@pytest.mark.parametrize("carry", ["ripple", "lookahead"])
def test_counter_carry_structures_agree(carry):
    netlist = Netlist("cnt")
    clk = netlist.add_input("clk")
    counter = build_binary_counter(netlist, 8, clk, carry_structure=carry)
    netlist.add_output_bus("c", counter.count)
    sim = Simulator(netlist)
    values = sim.run_sequence(counter.count, 10, next_port=None)
    assert values == [i % 8 for i in range(10)]


def test_counter_width_helper():
    assert counter_width(1) == 1
    assert counter_width(2) == 1
    assert counter_width(3) == 2
    assert counter_width(16) == 4
    assert counter_width(17) == 5
    with pytest.raises(NetlistError):
        counter_width(0)


def test_counter_rejects_bad_carry_structure():
    netlist = Netlist("cnt")
    clk = netlist.add_input("clk")
    with pytest.raises(NetlistError):
        build_binary_counter(netlist, 4, clk, carry_structure="magic")


# ---------------------------------------------------------------------------
# Decoders and comparators
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("width,outputs", [(1, 2), (2, 4), (3, 8), (4, 16), (5, 32), (6, 40)])
def test_decoder_is_one_hot_and_correct(width, outputs):
    netlist = Netlist("dec")
    address = netlist.add_input_bus("a", width)
    decoder = build_decoder(netlist, address, num_outputs=outputs)
    netlist.add_output_bus("sel", decoder.outputs)
    sim = Simulator(netlist)
    for value in range(outputs):
        sim.poke_bus(address, value)
        sim.settle()
        assert sim.peek_onehot(decoder.outputs) == value


def test_decoder_enable_gates_outputs():
    netlist = Netlist("dec")
    address = netlist.add_input_bus("a", 2)
    enable = netlist.add_input("en")
    decoder = build_decoder(netlist, address, enable=enable)
    netlist.add_output_bus("sel", decoder.outputs)
    sim = Simulator(netlist)
    sim.poke_bus(address, 2)
    sim.poke("en", 0)
    sim.settle()
    assert sim.peek_onehot(decoder.outputs) is None
    sim.poke("en", 1)
    sim.settle()
    assert sim.peek_onehot(decoder.outputs) == 2


def test_decoder_rejects_bad_output_count():
    netlist = Netlist("dec")
    address = netlist.add_input_bus("a", 2)
    with pytest.raises(NetlistError):
        build_decoder(netlist, address, num_outputs=5)


@pytest.mark.parametrize("width,constant", [(3, 0), (3, 5), (3, 7), (5, 19)])
def test_equality_comparator(width, constant):
    netlist = Netlist("cmp")
    value = netlist.add_input_bus("v", width)
    eq = build_equality_comparator(netlist, value, constant)
    netlist.add_output("eq", eq)
    sim = Simulator(netlist)
    for candidate in range(1 << width):
        sim.poke_bus(value, candidate)
        sim.settle()
        assert sim.peek("eq") == int(candidate == constant)


# ---------------------------------------------------------------------------
# Adders
# ---------------------------------------------------------------------------

@given(a=st.integers(0, 255), b=st.integers(0, 255))
@settings(max_examples=25, deadline=None)
def test_ripple_adder_matches_python(a, b):
    netlist = Netlist("add")
    abus = netlist.add_input_bus("a", 8)
    bbus = netlist.add_input_bus("b", 8)
    total, carry = build_ripple_adder(netlist, abus, bbus)
    netlist.add_output_bus("s", total)
    netlist.add_output("co", carry)
    sim = Simulator(netlist)
    sim.poke_bus(abus, a)
    sim.poke_bus(bbus, b)
    sim.settle()
    result = sim.peek_bus(total) | (sim.peek("co") << 8)
    assert result == a + b


@pytest.mark.parametrize("builder", [build_incrementer, build_lookahead_incrementer])
def test_incrementers_match_python(builder):
    netlist = Netlist("inc")
    abus = netlist.add_input_bus("a", 6)
    total, carry = builder(netlist, abus)
    netlist.add_output_bus("s", total)
    netlist.add_output("co", carry)
    sim = Simulator(netlist)
    for a in range(64):
        sim.poke_bus(abus, a)
        sim.settle()
        assert sim.peek_bus(total) == (a + 1) % 64
        assert sim.peek("co") == int(a == 63)


def test_adder_width_mismatch_rejected():
    netlist = Netlist("add")
    a = netlist.add_input_bus("a", 3)
    b = netlist.add_input_bus("b", 4)
    with pytest.raises(NetlistError):
        build_ripple_adder(netlist, a, b)


# ---------------------------------------------------------------------------
# Shift registers, registers, gates
# ---------------------------------------------------------------------------

def test_token_shift_register_rotation():
    netlist = Netlist("sr")
    clk = netlist.add_input("clk")
    en = netlist.add_input("next")
    rst = netlist.add_input("reset")
    loop = netlist.new_net("loop")
    sr = build_token_shift_register(
        netlist, 5, clk, loop, enable=en, reset=rst, token_at=2
    )
    netlist.add_cell("BUF", A=sr.serial_out, Y=loop)
    netlist.add_output_bus("q", sr.outputs)
    sim = Simulator(netlist)
    sim.reset()
    positions = sim.run_sequence(sr.outputs, 11, onehot=True)
    assert positions == [2, 3, 4, 0, 1, 2, 3, 4, 0, 1, 2]


def test_token_shift_register_enable_freeze():
    netlist = Netlist("sr")
    clk = netlist.add_input("clk")
    en = netlist.add_input("next")
    rst = netlist.add_input("reset")
    loop = netlist.new_net("loop")
    sr = build_token_shift_register(
        netlist, 3, clk, loop, enable=en, reset=rst, token_at=0
    )
    netlist.add_cell("BUF", A=sr.serial_out, Y=loop)
    netlist.add_output_bus("q", sr.outputs)
    sim = Simulator(netlist)
    sim.reset()
    sim.step(next=0)
    sim.step(next=0)
    sim.settle()
    assert sim.peek_onehot(sr.outputs) == 0


def test_token_shift_register_validation():
    netlist = Netlist("sr")
    clk = netlist.add_input("clk")
    serial = netlist.const(0)
    with pytest.raises(NetlistError):
        build_token_shift_register(netlist, 0, clk, serial)
    with pytest.raises(NetlistError):
        build_token_shift_register(netlist, 4, clk, serial, token_at=4)


def test_parallel_register_variants():
    netlist = Netlist("reg")
    clk = netlist.add_input("clk")
    en = netlist.add_input("en")
    rst = netlist.add_input("rst")
    data = netlist.add_input_bus("d", 4)
    q = build_register(netlist, data, clk, enable=en, reset=rst)
    netlist.add_output_bus("q", q)
    sim = Simulator(netlist)
    sim.poke_bus(data, 9)
    sim.step(en=1, rst=0)
    assert sim.peek_bus(q) == 9
    sim.poke_bus(data, 5)
    sim.step(en=0, rst=0)
    assert sim.peek_bus(q) == 9
    sim.step(en=1, rst=1)
    assert sim.peek_bus(q) == 0


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 9, 16])
def test_and_or_trees(count):
    netlist = Netlist("tree")
    bits = netlist.add_input_bus("b", count)
    and_out = build_and_tree(netlist, bits)
    or_out = build_or_tree(netlist, bits)
    netlist.add_output("a", and_out)
    netlist.add_output("o", or_out)
    sim = Simulator(netlist)
    for value in (0, 1, (1 << count) - 1, 1 << (count - 1)):
        sim.poke_bus(bits, value & ((1 << count) - 1))
        sim.settle()
        bits_set = [(value >> i) & 1 for i in range(count)]
        assert sim.peek("a") == int(all(bits_set))
        assert sim.peek("o") == int(any(bits_set))


def test_mux_tree_selects_correct_input():
    netlist = Netlist("mux")
    data = netlist.add_input_bus("d", 6)
    select = netlist.add_input_bus("s", 3)
    out = build_mux_tree(netlist, data, select)
    netlist.add_output("y", out)
    sim = Simulator(netlist)
    sim.poke_bus(data, 0b101010)
    for index in range(6):
        sim.poke_bus(select, index)
        sim.settle()
        assert sim.peek("y") == (0b101010 >> index) & 1


def test_mux_tree_too_many_inputs_rejected():
    netlist = Netlist("mux")
    data = netlist.add_input_bus("d", 5)
    select = netlist.add_input_bus("s", 2)
    with pytest.raises(NetlistError):
        build_mux_tree(netlist, data, select)
