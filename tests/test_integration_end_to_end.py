"""Integration tests: the paper's qualitative claims, end to end.

These tests run the complete flow (workload -> mapping -> elaboration ->
synthesis) and assert the *qualitative* results of the paper's evaluation --
the quantities the benchmark harness then reports numerically.
"""


from repro.analysis.tradeoff import average_factors, compare_generators
from repro.core.sradgen import generate
from repro.generators import (
    CounterBasedAddressGenerator,
    FsmAddressGenerator,
    SragDesign,
)
from repro.synth.fsm import FiniteStateMachine, synthesize_fsm
from repro.synth.flow import run_synthesis_flow
from repro.workloads import dct, fifo, motion_estimation, zoom
from repro.workloads.fifo import incremental_sequence


def test_srag_is_faster_but_larger_than_cntag():
    """The headline trade-off (Section 6, Figures 8 and 10)."""
    pattern = motion_estimation.new_img_read_pattern(32, 32, 2, 2)
    record = compare_generators("motion_est_read", pattern)
    assert record.delay_reduction_factor > 1.3
    assert record.area_increase_factor > 1.5


def test_srag_delay_is_flatter_than_cntag_delay():
    """SRAG delay grows slowly with array size; CntAG delay grows faster."""
    small = compare_generators(
        "motion_est_read", motion_estimation.new_img_read_pattern(16, 16, 2, 2)
    )
    large = compare_generators(
        "motion_est_read", motion_estimation.new_img_read_pattern(64, 64, 2, 2)
    )
    srag_growth = large.srag.delay_ns - small.srag.delay_ns
    cntag_growth = large.cntag.delay_ns - small.cntag.delay_ns
    assert cntag_growth > srag_growth
    assert large.srag.delay_ns < 1.6 * small.srag.delay_ns


def test_decoder_delay_grows_with_array_size():
    """Figure 9's driver: the decoder contribution increases with the array."""
    small = CounterBasedAddressGenerator(
        motion_estimation.new_img_read_pattern(16, 16, 2, 2)
    ).component_reports()
    large = CounterBasedAddressGenerator(
        motion_estimation.new_img_read_pattern(128, 128, 2, 2)
    ).component_reports()
    assert large["row_decoder"].delay_ns > small["row_decoder"].delay_ns
    assert large["counter"].delay_ns < 2 * small["counter"].delay_ns


def test_shift_register_beats_symbolic_fsm_for_incremental_access():
    """Section 3 (Figures 3 and 4): the shift register is much faster than the
    binary-encoded symbolic FSM at a modest area premium."""
    length = 64
    sequence = incremental_sequence(length)

    fsm = FiniteStateMachine.from_select_sequence(sequence.linear, num_lines=length)
    fsm_result = run_synthesis_flow(synthesize_fsm(fsm, encoding="binary").netlist)

    shift_register = SragDesign(sequence).synthesize()

    assert shift_register.delay_ns < fsm_result.delay_ns
    # Area premium is modest compared to the delay advantage.
    assert shift_register.area_cells < 3.0 * fsm_result.area_cells


def test_table3_factors_are_in_the_papers_ballpark():
    """Average delay-reduction and area-increase factors land near Table 3."""
    records = []
    for size in (16, 32):
        records.append(
            compare_generators(
                "motion_est", motion_estimation.new_img_read_pattern(size, size, 2, 2)
            )
        )
    delay_factor, area_factor = average_factors(records)
    assert 1.2 < delay_factor < 3.0
    assert 1.2 < area_factor < 4.5


def test_every_paper_workload_flows_end_to_end():
    """Mapping, elaboration, gate-level verification and HDL generation work
    for each of the four Table 3 workloads."""
    sequences = [
        motion_estimation.read_sequence(8, 8, 2, 2),
        dct.column_pass_sequence(8, 8),
        zoom.zoom_read_sequence(4, 4, 2),
        fifo.fifo_sequence(8, 8),
    ]
    for sequence in sequences:
        result = generate(sequence, synthesize=True)
        assert result.generator.verify()
        assert result.synthesis.delay_ns > 0
        assert "entity" in result.vhdl


def test_fsm_generator_is_viable_but_expensive_for_block_access():
    """A symbolic FSM can also drive the ADDM, but with one state per access
    it carries far more synthesis effort than the SRAG for the same sequence."""
    sequence = motion_estimation.read_sequence(8, 8, 2, 2)
    fsm_design = FsmAddressGenerator(sequence, output_style="two_hot")
    assert fsm_design.verify()
    srag_design = SragDesign(sequence)
    fsm_states = fsm_design.fsm_synthesis.fsm.num_states
    srag_flops = (
        srag_design.generator.row_mapping.total_flip_flops
        + srag_design.generator.col_mapping.total_flip_flops
    )
    assert fsm_states == sequence.length
    assert srag_flops < fsm_states
