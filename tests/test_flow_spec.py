"""Tests for :mod:`repro.flow` -- the canonical FlowSpec configuration object.

Three contracts matter here:

* **Validation and round-tripping** -- a spec is frozen, validated on
  construction, and ``from_spec(to_spec())`` is the identity.
* **Cache-key stability** -- the golden-key tests pin literal SHA-256 digests
  for a legacy job and a fully-loaded job, so no future ``FlowSpec`` edit can
  silently invalidate every on-disk campaign cache.  The same applies to the
  ``EvalRecord`` dictionary form.
* **Compatibility shims** -- every pre-``FlowSpec`` loose-keyword signature
  keeps working, warns exactly once per call, and produces results identical
  to the equivalent ``spec=`` call.
"""

import dataclasses
import json
import pickle

import pytest

from repro.analysis.explorer import explore
from repro.cli import build_parser, main
from repro.core.sradgen import generate
from repro.engine.jobs import Campaign, EvalJob
from repro.engine.runner import EvalRecord
from repro.flow import DEFAULT_SPEC, FSM_ENCODINGS, FlowSpec, opt_label_suffix
from repro.generators.srag_design import SragDesign
from repro.synth.cell_library import STD018, get_library
from repro.synth.flow import run_synthesis_flow
from repro.workloads.fifo import fifo_pattern, incremental_sequence
from repro.workloads.motion_estimation import read_sequence


# ---------------------------------------------------------------------------
# Construction and validation
# ---------------------------------------------------------------------------

def test_spec_defaults_and_immutability():
    spec = FlowSpec()
    assert spec == DEFAULT_SPEC
    assert (spec.library, spec.max_fanout, spec.max_fsm_states) == ("std018", 8, 512)
    assert spec.opt_level == 0 and spec.power_cycles == 0
    assert spec.fsm_encodings == FSM_ENCODINGS
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.opt_level = 1
    # Hashable: specs can key dicts/sets (and so can jobs embedding them).
    assert len({FlowSpec(), FlowSpec(opt_level=1)}) == 2


@pytest.mark.parametrize(
    "bad",
    [
        dict(library="no_such_library"),
        dict(max_fanout=1),
        dict(opt_level=-1),
        dict(power_cycles=-5),
        dict(max_fsm_states=0),
        dict(fsm_encodings=("binary", "hexadecimal")),
        dict(opt_level=True),
        dict(max_fanout="8"),
        dict(library=3.14),
    ],
)
def test_spec_rejects_invalid_values(bad):
    with pytest.raises((KeyError, ValueError, TypeError)):
        FlowSpec(**bad)


def test_spec_accepts_a_library_object_and_normalises_to_its_name():
    assert FlowSpec(library=STD018).library == "std018"
    assert FlowSpec(library=get_library("std018_lp")).library == "std018_lp"


def test_spec_registers_unseen_library_objects_under_qualified_names():
    """An ad-hoc characterisation stays serialisable and collision-proof."""
    corner = STD018.scaled("flow_spec_test_corner", area_scale=2.0)
    spec = FlowSpec(library=corner)
    assert spec.library.startswith("flow_spec_test_corner#")
    assert spec.resolve_library() is corner
    # Round-tripping through the canonical dict finds the same library.
    assert FlowSpec.from_spec(spec.to_spec()) == spec


def test_fsm_encodings_sequence_is_coerced_to_tuple():
    spec = FlowSpec(fsm_encodings=["gray"])
    assert spec.fsm_encodings == ("gray",)


# ---------------------------------------------------------------------------
# Canonical serialisation
# ---------------------------------------------------------------------------

def test_to_spec_omits_post_seed_fields_at_their_defaults():
    assert FlowSpec().to_spec() == {
        "library": "std018",
        "max_fanout": 8,
        "max_fsm_states": 512,
    }
    loaded = FlowSpec(opt_level=1, power_cycles=64, fsm_encodings=("gray",))
    assert loaded.to_spec() == {
        "library": "std018",
        "max_fanout": 8,
        "max_fsm_states": 512,
        "opt_level": 1,
        "power_cycles": 64,
        "fsm_encodings": ["gray"],
    }
    # Enumeration-only knobs never reach job cache keys.
    assert "fsm_encodings" not in loaded.to_spec(job_key=True)


def test_from_spec_round_trips_and_rejects_unknown_fields():
    for spec in (
        FlowSpec(),
        FlowSpec(library="std018_fast", max_fanout=4),
        FlowSpec(opt_level=1, power_cycles=256, max_fsm_states=64),
        FlowSpec(fsm_encodings=("onehot", "gray")),
    ):
        assert FlowSpec.from_spec(spec.to_spec()) == spec
    with pytest.raises(ValueError, match="effort_tier"):
        FlowSpec.from_spec({"library": "std018", "effort_tier": "high"})


def test_with_overrides_skips_none_and_rejects_unknown_fields():
    spec = FlowSpec(opt_level=1)
    assert spec.with_overrides(opt_level=None, library=None) is spec
    derived = spec.with_overrides(library="std018_lp", power_cycles=32)
    assert (derived.library, derived.power_cycles, derived.opt_level) == (
        "std018_lp", 32, 1,
    )
    with pytest.raises(TypeError):
        spec.with_overrides(effort_tier="high")


def test_from_cli_args_reads_namespace_fields():
    parser = build_parser()
    args = parser.parse_args(
        ["--workload", "fifo", "--rows", "4", "--cols", "4",
         "--opt-level", "1", "--max-fsm-states", "99"]
    )
    spec = FlowSpec.from_cli_args(args)
    assert spec == FlowSpec(opt_level=1, max_fsm_states=99)
    defaults = parser.parse_args(["--workload", "fifo", "--rows", "4", "--cols", "4"])
    assert FlowSpec.from_cli_args(defaults) == FlowSpec()


def test_opt_label_suffix_shared_by_jobs_and_records():
    assert opt_label_suffix(0) == ""
    assert opt_label_suffix(1) == " O1"
    assert FlowSpec(opt_level=1).label_suffix == " O1"
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(opt_level=1))
    assert job.label.endswith(" O1")


# ---------------------------------------------------------------------------
# Golden cache keys: literal digests pinned across FlowSpec refactors
# ---------------------------------------------------------------------------

def test_golden_key_legacy_job():
    """A default-knob job hashes exactly as it did before FlowSpec existed."""
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    assert job.key == (
        "7731f6f8aaf22a1697f00a431ea842b26809569477ff0966cb23caa498afd238"
    )
    assert json.dumps(job.to_spec(), sort_keys=True, separators=(",", ":")) == (
        '{"cols":4,"library":"std018","library_fingerprint":"614ba225acce9b14",'
        '"max_fanout":8,"max_fsm_states":512,"rows":4,"style":"SRAG",'
        '"variant":"two-hot","version":1,"workload":"fifo"}'
    )


def test_golden_key_fully_loaded_job():
    """Every optional knob engaged: the omit-at-default fields all appear."""
    job = EvalJob(
        "motion_est_read", 16, 16, "FSM", "gray",
        FlowSpec(library="std018_lp", max_fanout=4, max_fsm_states=1024,
                 power_cycles=128, opt_level=1),
    )
    assert job.key == (
        "206dcc12212e7b9bbb89c3675d115664b13a9821a372ec270b9a138c064d0913"
    )


def test_golden_record_serialisation():
    """The cached dictionary form of records is byte-identical to the seed era."""
    record = EvalRecord(
        workload="fifo", rows=4, cols=4, style="SRAG", variant="two-hot",
        library="std018", key="k" * 64, status="ok", delay_ns=1.5,
        area_cells=650.0, flip_flops=10, total_cells=21, buffers_inserted=2,
        note="", duration_s=0.25,
    )
    assert json.dumps(record.to_dict(), sort_keys=True) == (
        '{"area_cells": 650.0, "buffers_inserted": 2, "cols": 4, '
        '"delay_ns": 1.5, "duration_s": 0.25, "flip_flops": 10, '
        f'"key": "{"k" * 64}", "library": "std018", "note": "", "rows": 4, '
        '"status": "ok", "style": "SRAG", "total_cells": 21, '
        '"variant": "two-hot", "workload": "fifo"}'
    )
    # Power/optimization fields only appear once those features opt in.
    powered = dataclasses.replace(
        record, energy_per_access_fj=12.5, avg_power_uw=3.5,
        opt_level=1, opt_cells_removed=4,
    )
    data = powered.to_dict()
    assert data["energy_per_access_fj"] == 12.5 and data["opt_level"] == 1
    assert EvalRecord.from_dict(record.to_dict()) == record


# ---------------------------------------------------------------------------
# Deprecation shims: every legacy signature warns once, behaves identically
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def srag_netlist():
    return SragDesign(incremental_sequence(32)).elaborate()


def _figures(result):
    return (result.area_cells, result.delay_ns, result.buffers_inserted)


def test_run_synthesis_flow_legacy_keywords(srag_netlist):
    with pytest.warns(DeprecationWarning, match="run_synthesis_flow") as caught:
        legacy = run_synthesis_flow(
            srag_netlist, library=get_library("std018_lp"), max_fanout=4, opt_level=1
        )
    assert len(caught) == 1
    fresh = run_synthesis_flow(
        srag_netlist,
        spec=FlowSpec(library="std018_lp", max_fanout=4, opt_level=1),
    )
    assert _figures(legacy) == _figures(fresh)


def test_synthesize_positional_library_warns_and_matches(srag_netlist):
    design = SragDesign(incremental_sequence(32))
    with pytest.warns(DeprecationWarning, match="SragDesign.synthesize") as caught:
        legacy = design.synthesize(get_library("std018_lp"))
    assert len(caught) == 1
    assert _figures(legacy) == _figures(
        design.synthesize(spec=FlowSpec(library="std018_lp"))
    )


def test_synthesize_library_is_keyword_only_now():
    design = SragDesign(incremental_sequence(16))
    with pytest.raises(TypeError, match="positional"):
        design.synthesize(STD018, STD018)
    with pytest.raises(TypeError, match="both"):
        design.synthesize(STD018, library=STD018)


def test_synthesize_legacy_keywords_warn_once(srag_netlist):
    design = SragDesign(incremental_sequence(32))
    with pytest.warns(DeprecationWarning) as caught:
        legacy = design.synthesize(max_fanout=4, opt_level=1)
    assert len(caught) == 1  # one warning per call, not per keyword
    assert _figures(legacy) == _figures(
        design.synthesize(spec=FlowSpec(max_fanout=4, opt_level=1))
    )


def test_generate_legacy_keywords(capsys):
    sequence = read_sequence(4, 4, 2, 2)
    with pytest.warns(DeprecationWarning, match="generate") as caught:
        legacy = generate(sequence, synthesize=True, opt_level=1)
    assert len(caught) == 1
    fresh = generate(sequence, synthesize=True, spec=FlowSpec(opt_level=1))
    assert _figures(legacy.synthesis) == _figures(fresh.synthesis)


def test_explore_legacy_keywords():
    pattern = fifo_pattern(4, 4)
    with pytest.warns(DeprecationWarning, match="explore") as caught:
        legacy = explore(pattern, max_fsm_states=4, opt_level=1)
    assert len(caught) == 1
    fresh = explore(pattern, spec=FlowSpec(max_fsm_states=4, opt_level=1))
    as_dict = lambda r: {
        (p.style, p.variant): (p.delay_ns, p.area_cells) for p in r.points
    }
    assert as_dict(legacy) == as_dict(fresh)
    assert all(p.style != "FSM" for p in legacy.points)


def test_eval_job_legacy_keywords():
    with pytest.warns(DeprecationWarning, match="EvalJob") as caught:
        legacy = EvalJob("fifo", 4, 4, "SRAG", "two-hot",
                         library="std018_lp", power_cycles=64, opt_level=1)
    assert len(caught) == 1
    fresh = EvalJob("fifo", 4, 4, "SRAG", "two-hot",
                    FlowSpec(library="std018_lp", power_cycles=64, opt_level=1))
    assert legacy == fresh and legacy.key == fresh.key
    # Reading the convenience attributes is not deprecated.
    assert (legacy.library, legacy.power_cycles, legacy.opt_level) == (
        "std018_lp", 64, 1,
    )
    assert legacy.max_fanout == 8 and legacy.max_fsm_states == 512


def test_from_grid_legacy_keywords():
    grid = dict(workloads=("fifo",), geometries=((4, 4),),
                styles=(("SRAG", "two-hot"),))
    with pytest.warns(DeprecationWarning, match="Campaign.from_grid") as caught:
        legacy = Campaign.from_grid("g", power_cycles=32, opt_level=1, **grid)
    assert len(caught) == 1
    fresh = Campaign.from_grid(
        "g", spec=FlowSpec(power_cycles=32, opt_level=1), **grid
    )
    assert [job.key for job in legacy] == [job.key for job in fresh]


def test_legacy_keywords_layer_on_top_of_an_explicit_spec():
    """dataclasses.replace-style call sites keep working: spec + override."""
    spec = FlowSpec(library="std018_lp", opt_level=1)
    with pytest.warns(DeprecationWarning):
        job = EvalJob("fifo", 4, 4, "SRAG", "two-hot", spec, power_cycles=16)
    assert job.spec == spec.with_overrides(power_cycles=16)


def test_eval_job_pickles_without_warning(recwarn):
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(opt_level=1))
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job and clone.key == job.key
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_eval_job_legacy_positional_library_still_works():
    """The pre-FlowSpec dataclass had library as its 6th positional field."""
    with pytest.warns(DeprecationWarning, match="EvalJob") as caught:
        legacy = EvalJob("fifo", 4, 4, "SRAG", "two-hot", "std018_lp")
    assert len(caught) == 1
    assert legacy == EvalJob(
        "fifo", 4, 4, "SRAG", "two-hot", FlowSpec(library="std018_lp")
    )
    with pytest.raises(TypeError, match="both"):
        EvalJob("fifo", 4, 4, "SRAG", "two-hot", "std018_lp", library="std018")


def test_synthesize_accepts_a_positional_spec(recwarn):
    design = SragDesign(incremental_sequence(32))
    positional = design.synthesize(FlowSpec(max_fanout=4))
    keyword = design.synthesize(spec=FlowSpec(max_fanout=4))
    assert _figures(positional) == _figures(keyword)
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
    with pytest.raises(TypeError, match="spec"):
        design.synthesize(FlowSpec(), spec=FlowSpec())


def test_ephemeral_library_specs_survive_pickling_into_fresh_registries(monkeypatch):
    """Worker processes on spawn-start platforms build their registry from
    scratch; a spec naming an ad-hoc corner must carry it along."""
    from repro.synth.cell_library import LIBRARIES

    corner = STD018.scaled("pickle_test_corner", area_scale=1.5)
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(library=corner))
    payload = pickle.dumps(job)
    # Simulate the fresh process: the qualified name is unknown there.
    monkeypatch.delitem(LIBRARIES, job.spec.library)
    clone = pickle.loads(payload)
    assert clone.key == job.key  # key needs the fingerprint -> the library
    assert clone.spec.resolve_library().cells == corner.cells


# ---------------------------------------------------------------------------
# CLI integration: --max-fsm-states routed through FlowSpec.from_cli_args
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("value", ["banana", "0", "-3", "2.5"])
def test_cli_rejects_garbage_max_fsm_states(value, capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(
            ["--workload", "fifo", "--rows", "4", "--cols", "4",
             "--max-fsm-states", value]
        )
    err = capsys.readouterr().err
    assert "--max-fsm-states" in err


def test_cli_max_fsm_states_bounds_exploration(capsys):
    assert main(["--workload", "fifo", "--rows", "4", "--cols", "4",
                 "--explore"]) == 0
    assert "FSM[" in capsys.readouterr().out
    assert main(["--workload", "fifo", "--rows", "4", "--cols", "4",
                 "--explore", "--max-fsm-states", "1"]) == 0
    assert "FSM[" not in capsys.readouterr().out
