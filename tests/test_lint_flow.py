"""Lint/flow integration: the lint-off path is byte-identical and free, the
lint-on path surfaces reports through SynthesisResult, EvalRecord and the
CLI without perturbing cache keys or serialised records."""

import json
import time

import pytest

from repro.cli import main
from repro.engine.jobs import EvalJob
from repro.engine.runner import EvalRecord, evaluate_job
from repro.flow import FlowSpec
from repro.generators.fsm_based import FsmAddressGenerator
from repro.lint.design import lint_netlist_if_enabled
from repro.synth.flow import run_synthesis_flow
from repro.synth.fsm import FiniteStateMachine
from repro.workloads.registry import build_pattern


@pytest.fixture(scope="module")
def pattern():
    return build_pattern("fifo", 4, 4)


# ---------------------------------------------------------------------------
# Spec plumbing: default-off, default-omitted, never in job keys
# ---------------------------------------------------------------------------

def test_lint_field_defaults_off_and_is_omitted():
    spec = FlowSpec()
    assert spec.lint == 0
    assert "lint" not in spec.to_spec()
    assert "lint" not in spec.to_spec(job_key=True)


def test_lint_field_serialises_when_set_but_never_in_job_keys():
    spec = FlowSpec(lint=1)
    assert spec.to_spec()["lint"] == 1
    # Diagnostic knob: selecting lint must not re-key (and so re-evaluate)
    # any cached point.
    assert "lint" not in spec.to_spec(job_key=True)
    assert FlowSpec.from_spec(spec.to_spec()) == spec


def test_lint_field_is_validated():
    with pytest.raises(ValueError):
        FlowSpec(lint=-1)
    with pytest.raises(TypeError):
        FlowSpec(lint=True)


def test_job_keys_identical_with_and_without_lint():
    plain = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec())
    linted = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(lint=1))
    assert plain.key == linted.key
    assert plain.to_spec() == linted.to_spec()


# ---------------------------------------------------------------------------
# Flow stage + SynthesisResult surface
# ---------------------------------------------------------------------------

def test_flow_attaches_lint_report_only_when_enabled(pattern):
    from repro.engine.jobs import build_design

    design = build_design(pattern, "SRAG", "two-hot")
    off = design.synthesize(spec=FlowSpec())
    assert off.lint_report is None
    on = design.synthesize(spec=FlowSpec(lint=1))
    assert on.lint_report is not None
    assert on.lint_report.findings == []
    assert on.lint_report.checked > 0
    # Lint must not perturb the measured result.
    assert on.delay_ns == off.delay_ns
    assert on.area_cells == off.area_cells


def test_run_synthesis_flow_lints_the_working_copy(pattern):
    from repro.engine.jobs import build_design

    netlist = build_design(pattern, "CntAG", "decoders").netlist
    before = (sorted(netlist.nets), sorted(netlist.cells))
    result = run_synthesis_flow(netlist, spec=FlowSpec(lint=1, opt_level=1))
    assert result.lint_report is not None
    assert result.lint_report.target == result.netlist.name
    # The caller's netlist is untouched (flow clones before rewriting).
    assert (sorted(netlist.nets), sorted(netlist.cells)) == before


def test_fsm_generator_feeds_its_machine_to_the_linter(pattern):
    design = FsmAddressGenerator(pattern.to_sequence(), encoding="binary")
    context = design.lint_context()
    assert isinstance(context["fsm"], FiniteStateMachine)
    result = design.synthesize(spec=FlowSpec(lint=1))
    assert result.lint_report is not None
    assert result.lint_report.findings == []


# ---------------------------------------------------------------------------
# EvalRecord: volatile findings, byte-identical serialisation
# ---------------------------------------------------------------------------

def test_evaluate_job_collects_findings_but_never_serialises_them():
    record = evaluate_job(EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(lint=1)))
    assert record.status == "ok"
    assert record.lint_findings == []  # clean design: empty, but collected
    assert "lint_findings" not in record.to_dict()


def test_record_jsonl_byte_identical_with_lint_on_and_off():
    job_off = EvalJob("dct", 4, 4, "CntAG", "decoders", FlowSpec())
    job_on = EvalJob("dct", 4, 4, "CntAG", "decoders", FlowSpec(lint=1))
    record_off = evaluate_job(job_off)
    record_on = evaluate_job(job_on)
    # duration_s is volatile run-to-run noise that predates linting;
    # normalise it, then demand byte identity of the serialised form.
    record_off.duration_s = record_on.duration_s = 0.0
    assert json.dumps(record_off.to_dict(), sort_keys=True) == json.dumps(
        record_on.to_dict(), sort_keys=True
    )


def test_record_with_findings_round_trips_without_them():
    record = EvalRecord(
        workload="w", rows=4, cols=4, style="SRAG", variant="two-hot",
        library="std018", key="k", status="ok",
        lint_findings=[{"rule": "design.dangling-net", "severity": "warning"}],
    )
    data = record.to_dict()
    assert "lint_findings" not in data
    rebuilt = EvalRecord.from_dict(data, cached=True)
    assert rebuilt.lint_findings == []
    assert rebuilt.cached


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_lint_flag_on_generate_path(capsys):
    code = main(
        ["--workload", "fifo", "--rows", "4", "--cols", "4", "--lint"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "lint: 0 finding(s)" in captured.out


def test_cli_lint_flag_on_campaign_path(capsys):
    code = main(["--campaign", "smoke", "--lint", "--serial", "--quiet"])
    captured = capsys.readouterr()
    assert code == 0
    assert "lint: 0 error-severity finding(s)" in captured.out


# ---------------------------------------------------------------------------
# Disabled-path overhead floor (the NULL_SPAN pattern from PR 6)
# ---------------------------------------------------------------------------

def test_lint_disabled_path_overhead_floor(pattern):
    """Best-of-3: the lint-off gate must stay in noise territory.

    Mirrors test_disabled_tracer_overhead_floor: the disabled branch is one
    falsy attribute test, so a regression that starts resolving libraries or
    walking the netlist with linting off shows up as an order of magnitude.
    """
    from repro.engine.jobs import build_design

    netlist = build_design(pattern, "SRAG", "two-hot").netlist
    spec = FlowSpec()
    n = 200_000

    def gated_loop():
        for _ in range(n):
            lint_netlist_if_enabled(netlist, spec)

    elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        gated_loop()
        elapsed = min(elapsed, time.perf_counter() - start)
    # ~2.5 us per disabled call is an order of magnitude above observed cost.
    assert elapsed < n * 2.5e-6, f"lint-off overhead too high: {elapsed:.3f}s"
