"""Tests for the standard-cell library, timing analysis and area accounting."""

import pytest

from repro.hdl.components import build_binary_counter, build_decoder
from repro.hdl.netlist import Netlist
from repro.synth.area import area_report
from repro.synth.cell_library import STD018, CellLibrary
from repro.synth.flow import run_synthesis_flow
from repro.synth.timing import timing_report


def test_library_covers_every_primitive():
    from repro.hdl.primitives import PRIMITIVES

    for cell_type in PRIMITIVES:
        assert cell_type in STD018, f"{cell_type} missing from the library"
        assert STD018.area_of(cell_type) >= 0


def test_flip_flops_are_marked_sequential():
    assert STD018["DFF"].sequential
    assert STD018["DFF_EN_RST"].sequential
    assert not STD018["NAND2"].sequential
    assert STD018.clk_to_q("DFF") > 0
    assert STD018.setup("DFF") > 0
    assert STD018.clk_to_q("NAND2") == 0


def test_gate_delay_increases_with_load():
    light = STD018.gate_delay("INV", 1.0)
    heavy = STD018.gate_delay("INV", 10.0)
    assert heavy > light > 0


def test_unknown_cell_raises():
    with pytest.raises(KeyError):
        STD018.area_of("NOT_A_CELL")


def test_scaled_library():
    scaled = STD018.scaled("fast", area_scale=0.5, delay_scale=0.5)
    assert isinstance(scaled, CellLibrary)
    assert scaled.area_of("DFF") == pytest.approx(STD018.area_of("DFF") * 0.5)
    assert scaled.tau == pytest.approx(STD018.tau * 0.5)
    assert scaled.gate_delay("INV", 4.0) < STD018.gate_delay("INV", 4.0)


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------

def _inverter_chain(length):
    netlist = Netlist("chain")
    a = netlist.add_input("a")
    net = a
    for i in range(length):
        out = netlist.new_net(f"n{i}")
        netlist.add_cell("INV", A=net, Y=out)
        net = out
    netlist.add_output("y", net)
    return netlist


def test_longer_chain_has_larger_delay():
    short = timing_report(_inverter_chain(2))
    long = timing_report(_inverter_chain(10))
    assert long.critical_path_delay > short.critical_path_delay
    assert long.levels == 10


def test_timing_includes_clk_to_q_and_setup():
    netlist = Netlist("ff2ff")
    clk = netlist.add_input("clk")
    q1 = netlist.new_net("q1")
    q2 = netlist.new_net("q2")
    n = netlist.new_net("n")
    netlist.add_cell("DFF", D=q2, CLK=clk, Q=q1)
    netlist.add_cell("INV", A=q1, Y=n)
    netlist.add_cell("DFF", D=n, CLK=clk, Q=q2)
    report = timing_report(netlist)
    minimum = STD018.clk_to_q("DFF") + STD018.setup("DFF")
    assert report.critical_path_delay > minimum
    assert "register setup" in report.endpoint


def test_timing_report_describe_lists_path():
    report = timing_report(_inverter_chain(3))
    text = report.describe()
    assert "critical path delay" in text
    assert text.count("INV") == 3


def test_decoder_delay_grows_with_size():
    def decoder_delay(width):
        netlist = Netlist("dec")
        clk = netlist.add_input("clk")
        registered = []
        for i in range(width):
            q = netlist.new_net(f"q{i}")
            netlist.add_cell("DFF", D=netlist.const(0), CLK=clk, Q=q)
            registered.append(q)
        decoder = build_decoder(netlist, registered)
        netlist.add_output_bus("sel", decoder.outputs)
        return run_synthesis_flow(netlist).delay_ns

    assert decoder_delay(8) > decoder_delay(4) > decoder_delay(2)


# ---------------------------------------------------------------------------
# Area
# ---------------------------------------------------------------------------

def test_area_report_sums_cells():
    netlist = Netlist("area")
    a = netlist.add_input("a")
    y1 = netlist.new_net("y1")
    y2 = netlist.new_net("y2")
    netlist.add_cell("INV", A=a, Y=y1)
    netlist.add_cell("INV", A=y1, Y=y2)
    netlist.add_output("y", y2)
    report = area_report(netlist)
    assert report.total == pytest.approx(2 * STD018.area_of("INV"))
    assert report.sequential == 0
    assert report.cell_counts["INV"] == 2
    assert report.flip_flop_count == 0
    assert "INV" in report.describe()


def test_area_separates_sequential_and_combinational():
    netlist = Netlist("area2")
    clk = netlist.add_input("clk")
    counter = build_binary_counter(netlist, 8, clk)
    netlist.add_output_bus("c", counter.count)
    report = area_report(netlist)
    assert report.sequential > 0
    assert report.combinational > 0
    assert report.total == pytest.approx(report.sequential + report.combinational)
    assert report.flip_flop_count == 3


def test_synthesis_flow_produces_consistent_result():
    netlist = Netlist("flow")
    clk = netlist.add_input("clk")
    counter = build_binary_counter(netlist, 16, clk)
    netlist.add_output_bus("c", counter.count)
    result = run_synthesis_flow(netlist, name="flow_test", metadata={"k": 1})
    assert result.name == "flow_test"
    assert result.delay_ns > 0
    assert result.area_cells > 0
    assert result.metadata["k"] == 1
    assert "delay" in result.summary()
