"""Tests for the campaign engine: jobs, cache, runner, sweeps and CLI."""

import random

import pytest

from repro.analysis.explorer import DesignPoint, pareto_front
from repro.cli import main
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob, STYLE_VARIANTS, build_design
from repro.engine.pareto import pareto_indices, pareto_min
from repro.engine.runner import CampaignRunner, EvalRecord, evaluate_job
from repro.flow import FlowSpec
from repro.engine.sweep import (
    available_campaigns,
    build_campaign,
    campaign_description,
)
from repro.workloads.registry import available_workloads, build_pattern


# ---------------------------------------------------------------------------
# Job keys
# ---------------------------------------------------------------------------

def test_job_key_is_stable_and_deterministic():
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    assert job.key == EvalJob("fifo", 4, 4, "SRAG", "two-hot").key
    assert len(job.key) == 64
    int(job.key, 16)  # hex digest


def test_job_key_distinguishes_every_axis():
    base = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    variants = [
        EvalJob("dct", 4, 4, "SRAG", "two-hot"),
        EvalJob("fifo", 8, 4, "SRAG", "two-hot"),
        EvalJob("fifo", 4, 8, "SRAG", "two-hot"),
        EvalJob("fifo", 4, 4, "CntAG", "decoders"),
        EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(library="std018_lp")),
        EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(max_fanout=4)),
    ]
    keys = {base.key} | {job.key for job in variants}
    assert len(keys) == len(variants) + 1


def test_job_key_covers_library_characterisation(monkeypatch):
    """Recalibrating a library must invalidate its cached results."""
    from repro.synth import cell_library

    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    key_before = job.key
    scaled = cell_library.STD018.scaled("std018", area_scale=2.0)
    monkeypatch.setitem(cell_library.LIBRARIES, "std018", scaled)
    assert job.key != key_before


def test_grid_expansion_covers_cross_product():
    campaign = Campaign.from_grid(
        "grid",
        workloads=("fifo", "dct"),
        geometries=((4, 4), (8, 8)),
        libraries=("std018", "std018_lp"),
    )
    assert len(campaign) == 2 * 2 * 2 * len(STYLE_VARIANTS)
    assert len({job.key for job in campaign}) == len(campaign)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def test_evaluate_job_ok_and_skipped():
    ok = evaluate_job(EvalJob("fifo", 4, 4, "SRAG", "two-hot"))
    assert ok.status == "ok"
    assert ok.delay_ns > 0 and ok.area_cells > 0 and ok.flip_flops > 0

    skipped = evaluate_job(EvalJob("dct", 4, 4, "SFM", "pointers"))
    assert skipped.status == "skipped"
    assert skipped.note


def test_evaluate_job_respects_max_fsm_states():
    record = evaluate_job(EvalJob("fifo", 4, 4, "FSM", "binary", FlowSpec(max_fsm_states=4)))
    assert record.status == "skipped"
    assert "max_fsm_states" in record.note


def test_build_design_matches_explorer_styles():
    pattern = build_pattern("fifo", 4, 4)
    design = build_design(pattern, "CntAG", "adders")
    assert design.style == "CntAG"
    with pytest.raises(KeyError):
        build_design(pattern, "SRAG", "nope")


def test_record_round_trips_through_dict():
    record = evaluate_job(EvalJob("fifo", 4, 4, "SRAG", "two-hot"))
    rebuilt = EvalRecord.from_dict(record.to_dict(), cached=True)
    assert rebuilt.cached and not record.cached
    assert rebuilt.to_dict() == record.to_dict()


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def test_cache_hit_miss_and_persistence(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.get("k") is None and "k" not in cache
    cache.put("k", {"value": 1})
    assert cache.get("k") == {"value": 1} and "k" in cache

    reloaded = ResultCache(str(tmp_path / "cache"))
    assert reloaded.get("k") == {"value": 1}
    assert len(reloaded) == 1


def test_cache_last_write_wins_and_compact(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("k", {"value": 1})
    cache.put("k", {"value": 2})
    assert ResultCache(str(tmp_path)).get("k") == {"value": 2}
    assert sum(1 for _ in open(cache.path)) == 2
    cache.compact()
    assert sum(1 for _ in open(cache.path)) == 1
    assert ResultCache(str(tmp_path)).get("k") == {"value": 2}


def test_cache_tolerates_torn_final_line(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("k", {"value": 1})
    with open(cache.path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn", "rec')  # killed mid-write
    reloaded = ResultCache(str(tmp_path))
    assert reloaded.get("k") == {"value": 1}
    assert "torn" not in reloaded


def test_in_memory_cache_does_not_persist():
    cache = ResultCache(None)
    cache.put("k", {"value": 1})
    assert cache.path is None
    assert cache.get("k") == {"value": 1}


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def _tiny_campaign():
    return Campaign.from_grid(
        "tiny",
        workloads=("fifo",),
        geometries=((4, 4),),
        styles=(("SRAG", "two-hot"), ("CntAG", "decoders"), ("SFM", "pointers")),
    )


def test_second_run_is_all_cache_hits(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = CampaignRunner(cache, workers=0).run(_tiny_campaign())
    assert cold.hits == 0 and cold.evaluated == len(cold.records)

    warm = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(_tiny_campaign())
    assert warm.hits == len(warm.records) and warm.evaluated == 0
    assert [r.to_dict() for r in warm.records] == [r.to_dict() for r in cold.records]


def test_error_records_are_not_cached(tmp_path, monkeypatch):
    """A transient failure must be retried on the next run, not replayed."""
    from repro.engine import runner as runner_module

    campaign = Campaign("one", [EvalJob("fifo", 4, 4, "SRAG", "two-hot")])
    job = campaign.jobs[0]

    def explode(j):
        return EvalRecord(
            workload=j.workload, rows=j.rows, cols=j.cols, style=j.style,
            variant=j.variant, library=j.library, key=j.key,
            status="error", note="transient worker failure",
        )

    monkeypatch.setattr(runner_module, "evaluate_job", explode)
    first = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(campaign)
    assert first.records[0].status == "error"
    assert job.key not in ResultCache(str(tmp_path))

    monkeypatch.undo()
    second = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(campaign)
    assert second.records[0].status == "ok" and second.hits == 0


def test_force_re_evaluates_despite_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    CampaignRunner(cache, workers=0).run(_tiny_campaign())
    forced = CampaignRunner(cache, workers=0).run(_tiny_campaign(), force=True)
    assert forced.hits == 0


def test_serial_and_parallel_runs_are_identical():
    campaign = build_campaign("smoke")
    serial = CampaignRunner(ResultCache(None), workers=0).run(campaign)
    parallel = CampaignRunner(ResultCache(None), workers=4).run(campaign)

    def strip(result):
        # duration_s is wall-clock and legitimately differs between runs;
        # NaN metrics (skipped points) are mapped to None so they compare equal
        return [
            {
                k: None if isinstance(v, float) and v != v else v
                for k, v in r.to_dict().items()
                if k != "duration_s"
            }
            for r in result.records
        ]

    assert strip(serial) == strip(parallel)
    assert {
        group: [r.key for r in front]
        for group, front in serial.pareto_fronts().items()
    } == {
        group: [r.key for r in front]
        for group, front in parallel.pareto_fronts().items()
    }


class _FakePool:
    """Stand-in process pool: runs batches inline, failing selected jobs.

    ``submit`` returns real ``concurrent.futures.Future`` objects so the
    runner's ``as_completed`` loop is exercised unchanged.
    """

    def __init__(self, fail=lambda job: None):
        self.fail = fail
        self.submissions = []

    def submit(self, fn, batch, *args):
        import concurrent.futures

        self.submissions.append(list(batch))
        future = concurrent.futures.Future()
        errors = [e for e in (self.fail(job) for job in batch) if e is not None]
        if errors:
            future.set_exception(errors[0])
        else:
            future.set_result(fn(batch, *args))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_one_failing_batch_does_not_abort_the_campaign(tmp_path, capsys):
    """Satellite regression: a raising future is recovered, not fatal.

    A future-level failure cannot be pinned on a single job of the batch,
    so the runner re-evaluates that batch in-process: healthy jobs still
    produce (and cache) real records instead of misclassified failures.
    """
    campaign = _tiny_campaign()
    doomed = campaign.jobs[1]
    runner = CampaignRunner(ResultCache(str(tmp_path)), workers=4, chunk_size=2)
    runner._pool = _FakePool(
        fail=lambda job: RuntimeError("worker exploded")
        if job.key == doomed.key
        else None
    )
    result = runner.run(campaign)
    assert len(result.records) == len(campaign.jobs)
    # The diagnostic is structured logging on stderr, never stdout (stdout
    # is reserved for the report a caller might be piping somewhere).
    captured = capsys.readouterr()
    assert "worker exploded" in captured.err
    assert captured.out == ""
    # Every job of the failed batch was re-evaluated in-process: the whole
    # campaign completes with real statuses, nothing marked from the crash.
    statuses = {r.key: r.status for r in result.records}
    assert statuses[doomed.key] == "ok"
    assert all(status in ("ok", "skipped") for status in statuses.values())
    assert doomed.key in ResultCache(str(tmp_path))
    # The retried records are cached like any other.
    warm = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(campaign)
    assert warm.hits == len(campaign.jobs)


def test_chunked_dispatch_batches_jobs(tmp_path):
    campaign = _tiny_campaign()
    runner = CampaignRunner(ResultCache(str(tmp_path)), workers=2, chunk_size=2)
    pool = _FakePool()
    runner._pool = pool
    result = runner.run(campaign)
    assert [len(batch) for batch in pool.submissions] == [2, 1]
    assert all(r.status in ("ok", "skipped") for r in result.records)


def test_chunk_size_validation_and_default_heuristic():
    with pytest.raises(ValueError):
        CampaignRunner(ResultCache(None), chunk_size=0)
    runner = CampaignRunner(ResultCache(None), workers=4)
    jobs = list(range(32))  # _chunked only slices, any payload works
    batches = runner._chunked(jobs)  # 32 jobs / (4 workers * 4) -> size 2
    assert [len(b) for b in batches] == [2] * 16
    assert [job for batch in batches for job in batch] == jobs
    assert [len(b) for b in CampaignRunner(
        ResultCache(None), workers=4, chunk_size=5
    )._chunked(jobs)] == [5, 5, 5, 5, 5, 5, 2]


def test_pool_persists_across_runs_and_closes():
    campaign = _tiny_campaign()
    with CampaignRunner(ResultCache(None), workers=2) as runner:
        runner.run(campaign)
        pool_after_first = runner._pool
        runner.run(campaign, force=True)
        assert runner._pool is pool_after_first
        if pool_after_first is None:
            pytest.skip("process pools unavailable in this environment")
    assert runner._pool is None  # context exit shut the pool down
    runner.close()  # idempotent


def test_progress_counts_duplicate_jobs(tmp_path):
    """Regression: duplicate uncached jobs must each fire the callback."""
    job = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    campaign = Campaign("dups", [job, job, EvalJob("fifo", 4, 4, "CntAG", "decoders")])
    seen = []
    runner = CampaignRunner(
        ResultCache(str(tmp_path)),
        workers=0,
        progress=lambda record, done, total: seen.append((record.key, done, total)),
    )
    result = runner.run(campaign)
    assert len(result.records) == 3
    assert result.records[0].to_dict() == result.records[1].to_dict()
    # Every job fired exactly once, done reached total.
    assert [done for _, done, _ in seen] == [1, 2, 3]
    assert all(total == 3 for _, _, total in seen)
    assert [key for key, _, _ in seen].count(job.key) == 2

    # Same campaign again: duplicates now come from the cache, still 3 events.
    seen.clear()
    runner.run(campaign)
    assert [done for _, done, _ in seen] == [1, 2, 3]


def test_progress_callback_sees_every_record(tmp_path):
    campaign = _tiny_campaign()
    seen = []
    runner = CampaignRunner(
        ResultCache(str(tmp_path)),
        workers=0,
        progress=lambda record, done, total: seen.append((record.key, done, total)),
    )
    runner.run(campaign)
    assert len(seen) == len(campaign)
    assert [done for _, done, _ in seen] == list(range(1, len(campaign) + 1))


def test_campaign_result_groups_and_describe(tmp_path):
    result = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(
        build_campaign("smoke")
    )
    groups = result.groups()
    assert ("fifo", 4, 4, "std018") in groups
    assert ("dct", 4, 4, "std018") in groups
    for front in result.pareto_fronts().values():
        assert front
    text = result.describe()
    assert "cache hits" in text and "fifo 4x4" in text


def test_power_jobs_record_power_metrics():
    record = evaluate_job(
        EvalJob("fifo", 4, 4, "CntAG", "decoders", FlowSpec(power_cycles=64))
    )
    assert record.status == "ok"
    assert record.energy_per_access_fj > 0
    assert record.avg_power_uw > 0
    assert record.has_power

    plain = evaluate_job(EvalJob("fifo", 4, 4, "CntAG", "decoders"))
    assert plain.status == "ok"
    assert not plain.has_power  # NaN without the power study


def test_power_is_measured_on_the_buffered_netlist():
    """All metrics in one record must describe the same (buffered) structure."""
    from repro.synth.power import estimate_power
    from repro.workloads.registry import build_pattern

    job = EvalJob("motion_est_read", 16, 16, "SRAG", "two-hot", FlowSpec(power_cycles=32))
    record = evaluate_job(job)
    assert record.status == "ok" and record.buffers_inserted > 0

    design = build_design(build_pattern(job.workload, job.rows, job.cols),
                          job.style, job.variant)
    synth = design.synthesize(spec=job.spec)
    buffered = estimate_power(synth.netlist, cycles=32)
    unbuffered = estimate_power(design.netlist, cycles=32)
    assert record.energy_per_access_fj == buffered.energy_per_access_fj
    assert record.energy_per_access_fj != unbuffered.energy_per_access_fj


def test_power_cycles_only_changes_key_when_enabled():
    """Old cache entries for non-power jobs must keep matching."""
    base = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
    assert EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(power_cycles=0)).key == base.key
    assert "power_cycles" not in base.to_spec()
    powered = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(power_cycles=256))
    assert powered.key != base.key
    assert powered.to_spec()["power_cycles"] == 256


def test_record_from_dict_tolerates_pre_power_cache_entries():
    """Round-trip a cache dict written before the power fields existed."""
    record = evaluate_job(EvalJob("fifo", 4, 4, "SRAG", "two-hot"))
    old_style = {
        k: v
        for k, v in record.to_dict().items()
        if k not in ("energy_per_access_fj", "avg_power_uw")
    }
    rebuilt = EvalRecord.from_dict(old_style, cached=True)
    assert rebuilt.cached
    assert not rebuilt.has_power
    assert rebuilt.delay_ns == record.delay_ns
    # And it round-trips forward through the current format.
    assert EvalRecord.from_dict(rebuilt.to_dict()).to_dict() == rebuilt.to_dict()


def test_power_campaign_runs_and_describes_power(tmp_path):
    campaign = build_campaign("power")
    assert all(job.power_cycles == 256 for job in campaign)
    # Trim to one geometry to keep the unit test fast; the full campaign is
    # exercised by the CLI test and the CI workflow.
    small = Campaign("power", [job for job in campaign if job.rows == 4])
    result = CampaignRunner(ResultCache(str(tmp_path)), workers=0).run(small)
    ok = result.ok_records()
    assert ok and all(r.has_power for r in ok)
    assert "e/access" in result.describe()


def test_registered_campaigns_all_build():
    for name in available_campaigns():
        campaign = build_campaign(name)
        assert campaign.name == name
        assert len(campaign) > 0
        for job in campaign:
            assert job.workload in available_workloads()


def test_importing_sweep_builds_no_campaigns(monkeypatch):
    """Regression: registration must be lazy -- importing ``repro.engine``
    used to expand all eight campaign grids just to read their names."""
    import importlib

    import repro.engine.sweep as sweep_module

    built = []
    original_init = Campaign.__init__

    def counting_init(self, *args, **kwargs):
        built.append(1)
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(Campaign, "__init__", counting_init)
    importlib.reload(sweep_module)
    assert built == [], "import-time registration expanded a campaign grid"
    # Listing names and descriptions must stay grid-free too.
    for name in sweep_module.available_campaigns():
        sweep_module.campaign_description(name)
    assert built == []
    # Grids are only expanded on demand, and the registry is intact.
    campaign = sweep_module.build_campaign("smoke")
    assert built and campaign.name == "smoke"
    assert set(sweep_module.available_campaigns()) == set(available_campaigns())


def test_campaign_descriptions_are_registered_and_stamped():
    for name in available_campaigns():
        description = campaign_description(name)
        assert description, f"campaign {name!r} registered without a description"
        assert build_campaign(name).description == description


def test_register_campaign_rejects_legacy_bare_decorator_usage():
    from repro.engine.sweep import register_campaign

    with pytest.raises(TypeError, match="campaign name"):
        @register_campaign
        def orphan() -> Campaign:  # pragma: no cover - must not register
            return Campaign("orphan", [])


def test_build_campaign_rejects_name_mismatch(monkeypatch):
    import repro.engine.sweep as sweep_module

    monkeypatch.setitem(
        sweep_module.CAMPAIGNS, "liar", lambda: Campaign("truth", [])
    )
    with pytest.raises(ValueError, match="liar"):
        sweep_module.build_campaign("liar")


# ---------------------------------------------------------------------------
# Logic optimization as a campaign axis
# ---------------------------------------------------------------------------

def test_opt_level_only_changes_key_when_enabled():
    """Every pre-optimization cache entry must keep matching its job."""
    base = EvalJob("fifo", 4, 4, "CntAG", "decoders")
    assert EvalJob("fifo", 4, 4, "CntAG", "decoders", FlowSpec(opt_level=0)).key == base.key
    assert "opt_level" not in base.to_spec()
    optimized = EvalJob("fifo", 4, 4, "CntAG", "decoders", FlowSpec(opt_level=1))
    assert optimized.key != base.key
    assert optimized.to_spec()["opt_level"] == 1
    assert optimized.label.endswith(" O1")
    assert not base.label.endswith(" O1")


def test_optimized_jobs_record_the_win():
    raw = evaluate_job(EvalJob("fifo", 8, 8, "CntAG", "decoders"))
    opt = evaluate_job(EvalJob("fifo", 8, 8, "CntAG", "decoders", FlowSpec(opt_level=1)))
    assert raw.status == opt.status == "ok"
    assert raw.opt_level == 0 and raw.opt_cells_removed == 0
    assert opt.opt_level == 1 and opt.opt_cells_removed > 0
    assert opt.total_cells < raw.total_cells
    assert opt.area_cells < raw.area_cells
    assert opt.label.endswith(" O1")
    # The cached form only grows the new fields when optimization ran.
    assert "opt_level" not in raw.to_dict()
    assert opt.to_dict()["opt_cells_removed"] == opt.opt_cells_removed
    # Pre-optimization cache entries round-trip to defaulted records.
    rebuilt = EvalRecord.from_dict(raw.to_dict(), cached=True)
    assert rebuilt.opt_level == 0 and rebuilt.opt_cells_removed == 0
    assert EvalRecord.from_dict(opt.to_dict()).to_dict() == opt.to_dict()


def test_opt_levels_campaign_pairs_every_point():
    campaign = build_campaign("opt_levels")
    by_level = {}
    for job in campaign:
        by_level.setdefault(job.opt_level, set()).add(
            (job.workload, job.rows, job.cols, job.style, job.variant)
        )
    assert set(by_level) == {0, 1}
    assert by_level[0] == by_level[1]


# ---------------------------------------------------------------------------
# Pareto sweep
# ---------------------------------------------------------------------------

def _brute_force_front(objectives):
    front = []
    for i, (x, y) in enumerate(objectives):
        dominated = any(
            ox <= x and oy <= y and (ox < x or oy < y) for ox, oy in objectives
        )
        if not dominated:
            front.append(i)
    return front


def test_pareto_sweep_matches_brute_force():
    rng = random.Random(42)
    for _ in range(50):
        objectives = [
            (rng.randrange(10) / 2.0, rng.randrange(10) / 2.0)
            for _ in range(rng.randrange(1, 40))
        ]
        assert pareto_indices(objectives) == _brute_force_front(objectives)


def test_pareto_sweep_keeps_duplicate_frontier_points():
    objectives = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0), (2.0, 2.0)]
    assert pareto_indices(objectives) == [0, 1, 2]


def test_pareto_sweep_keeps_nan_points():
    nan = float("nan")
    assert pareto_indices([(1.0, 1.0), (nan, 2.0), (2.0, 2.0)]) == [0, 1]


def test_explorer_pareto_front_uses_sweep():
    points = [
        DesignPoint("A", "", 1.0, 100.0, 0),
        DesignPoint("B", "", 2.0, 50.0, 0),
        DesignPoint("C", "", 2.5, 200.0, 0),
    ]
    front = pareto_front(points)
    assert front == points[:2]
    assert pareto_min(points, key=lambda p: (p.delay_ns, p.area_cells)) == front


# ---------------------------------------------------------------------------
# CLI round-trips
# ---------------------------------------------------------------------------

def test_cli_list_campaigns(capsys):
    assert main(["--list-campaigns"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "smoke" in out


def test_cli_campaign_cold_then_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--campaign", "smoke", "--cache-dir", cache_dir, "--serial"]) == 0
    cold = capsys.readouterr().out
    assert "cache hits 0/16" in cold

    assert main(["--campaign", "smoke", "--cache-dir", cache_dir, "--serial"]) == 0
    warm = capsys.readouterr().out
    assert "cache hits 16/16" in warm
    # Metrics identical across the two runs.
    assert cold.split("cache hits")[1].splitlines()[1:] == \
        warm.split("cache hits")[1].splitlines()[1:]


def test_cli_campaign_quiet_suppresses_progress(tmp_path, capsys):
    assert main([
        "--campaign", "smoke", "--cache-dir", str(tmp_path), "--serial", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "[ 1/16]" not in out
    assert "cache hits" in out


def test_cli_explore_still_works(capsys):
    assert main(["--workload", "fifo", "--rows", "4", "--cols", "4", "--explore"]) == 0
    out = capsys.readouterr().out
    assert "design space" in out and "SRAG" in out


def test_cli_requires_rows_cols_for_single_runs(capsys):
    with pytest.raises(SystemExit):
        main(["--workload", "fifo"])
    assert "--rows and --cols are required" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Synthesis flow no longer mutates its input netlist
# ---------------------------------------------------------------------------

def test_synthesize_is_idempotent_across_libraries():
    from repro.generators.srag_design import SragDesign
    from repro.workloads.fifo import incremental_sequence

    design = SragDesign(incremental_sequence(32))
    first = design.synthesize(spec=FlowSpec(library="std018"))
    other = design.synthesize(spec=FlowSpec(library="std018_lp"))
    again = design.synthesize(spec=FlowSpec(library="std018"))
    assert first.buffers_inserted == other.buffers_inserted == again.buffers_inserted
    assert first.area_cells == again.area_cells
    assert first.delay_ns == again.delay_ns


def test_run_synthesis_flow_leaves_netlist_untouched():
    from repro.generators.srag_design import SragDesign
    from repro.synth.flow import run_synthesis_flow
    from repro.workloads.fifo import incremental_sequence

    netlist = SragDesign(incremental_sequence(32)).elaborate()
    cells_before = set(netlist.cells)
    result = run_synthesis_flow(netlist)
    assert result.buffers_inserted > 0
    assert set(netlist.cells) == cells_before


def test_netlist_clone_is_deep_and_equivalent():
    from repro.generators.srag_design import SragDesign
    from repro.synth.flow import run_synthesis_flow
    from repro.workloads.fifo import incremental_sequence

    netlist = SragDesign(incremental_sequence(64)).elaborate()
    clone = netlist.clone()
    assert clone is not netlist
    assert set(clone.cells) == set(netlist.cells)
    assert set(clone.nets) == set(netlist.nets)
    assert set(clone.inputs) == set(netlist.inputs)
    assert set(clone.outputs) == set(netlist.outputs)
    # Same synthesis result from the clone...
    original = run_synthesis_flow(netlist)
    cloned = run_synthesis_flow(clone)
    assert cloned.area_cells == original.area_cells
    assert cloned.delay_ns == original.delay_ns
    # ...and mutating the clone does not leak into the original.
    clone.add_input("fresh_input")
    assert "fresh_input" not in netlist.inputs
