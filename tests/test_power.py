"""Tests for the switching-activity power estimator."""

import pytest

from repro.core.addm_generator import SragAddressGenerator
from repro.generators import CounterBasedAddressGenerator
from repro.hdl.components import build_binary_counter
from repro.hdl.netlist import Netlist
from repro.synth.power import PowerReport, estimate_power
from repro.workloads import motion_estimation


def _counter_netlist(modulus):
    netlist = Netlist("pwr_cnt")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    counter = build_binary_counter(netlist, modulus, clk, enable=nxt, reset=rst)
    netlist.add_output_bus("c", counter.count)
    return netlist


def test_power_report_basic_properties():
    report = estimate_power(_counter_netlist(8), cycles=64)
    assert report.cycles == 64
    assert report.total_toggles > 0
    assert report.switching_energy_fj > 0
    assert report.clock_energy_fj > 0
    assert report.energy_per_access_fj > 0
    assert report.average_power_uw > 0
    assert "fJ" in report.summary()


def test_power_scales_with_activity():
    """A wider counter toggles more nets and burns more energy per cycle."""
    small = estimate_power(_counter_netlist(4), cycles=64)
    large = estimate_power(_counter_netlist(64), cycles=64)
    assert large.energy_per_access_fj > small.energy_per_access_fj


def test_idle_design_only_burns_clock_power():
    """With `next` held low the counter never toggles; only clock energy remains."""
    netlist = _counter_netlist(16)
    report_idle = PowerReport(cycles=0)
    assert report_idle.energy_per_access_fj == 0

    sim_report = estimate_power(netlist, cycles=32, next_port="absent_port")
    # The port name does not exist, so `next` stays 0 and nothing switches
    # after reset; all remaining energy is clock energy.
    assert sim_report.switching_energy_fj == pytest.approx(0.0)
    assert sim_report.clock_energy_fj > 0


def test_power_rejects_bad_cycle_count():
    with pytest.raises(ValueError):
        estimate_power(_counter_netlist(8), cycles=0)


def test_power_rejects_unknown_engine():
    with pytest.raises(ValueError):
        estimate_power(_counter_netlist(8), cycles=8, engine="spice")


def test_power_engines_agree_exactly():
    """The compiled fast path is bit-for-bit the reference measurement."""
    netlist = _counter_netlist(32)
    reference = estimate_power(netlist, cycles=96, engine="reference")
    compiled = estimate_power(netlist, cycles=96, engine="compiled")
    assert compiled.toggle_counts == reference.toggle_counts
    assert compiled.switching_energy_fj == reference.switching_energy_fj
    assert compiled.clock_energy_fj == reference.clock_energy_fj


def test_srag_vs_cntag_power_comparison_runs():
    """The future-work study: compare SRAG and CntAG energy per access."""
    pattern = motion_estimation.new_img_read_pattern(8, 8, 2, 2)
    sequence = pattern.to_sequence()
    srag = SragAddressGenerator.from_sequence(sequence).netlist
    cntag = CounterBasedAddressGenerator(pattern).elaborate()
    srag_report = estimate_power(srag, cycles=sequence.length)
    cntag_report = estimate_power(cntag, cycles=sequence.length)
    assert srag_report.energy_per_access_fj > 0
    assert cntag_report.energy_per_access_fj > 0
    # The SRAG's data-path activity is tiny (one token moves per access), so
    # its net-switching energy per access stays below the CntAG's, whose
    # counters and decoders toggle many nets every cycle.
    assert (
        srag_report.switching_energy_fj / srag_report.cycles
        < cntag_report.switching_energy_fj / cntag_report.cycles
    )
