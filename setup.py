"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip combination lacks the ``wheel`` package
(``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
