"""Setuptools metadata.

Metadata lives here rather than in a ``pyproject.toml`` ``[project]`` table
(the repo deliberately ships no ``pyproject.toml``): as soon as one exists,
pip insists on the PEP 660 editable path, which needs the ``wheel`` package
that the offline reproduction environments don't have.  Without it, pip and
``python setup.py develop`` both use the legacy path, which needs no wheel
build.  Pytest configuration lives in ``pytest.ini``.
"""

from setuptools import find_packages, setup

setup(
    name="sradgen-repro",
    version="0.2.0",
    description=(
        "Address decoder decoupling (DATE 2002) reproduction: SRAG address "
        "generators, gate-level synthesis models, and campaign-scale "
        "design-space exploration"
    ),
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["sradgen = repro.cli:main"]},
)
