#!/usr/bin/env python
"""Repo-invariant linter front end (``repro.lint.ast_rules``).

Runs the stdlib-AST rule set over the given files/directories and reports
findings as text or JSON.  Exit status is 1 when any unsuppressed
error-severity finding remains, so CI fails on violations::

    python tools/sradlint.py src tests tools benchmarks examples
    python tools/sradlint.py --format json --output lint.json src
    python tools/sradlint.py --list-rules

Suppress a finding by appending ``# sradlint: disable=<rule-id>`` (with a
comment justifying it) to the offending line.  Runs stdlib-only and
bootstraps ``sys.path`` itself, so no PYTHONPATH or install step is needed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)

from repro.lint import AST_RULES, ast_rule_catalogue, lint_paths  # noqa: E402

DEFAULT_PATHS = ["src", "tests", "tools", "benchmarks", "examples"]


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sradlint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--rule", action="append", metavar="RULE-ID", dest="rule_ids",
        help="run only the named rule(s) (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, severity, description in ast_rule_catalogue():
            print(f"{rule_id:<28} {severity:<8} {description}")
        return 0

    rules = None
    if args.rule_ids:
        known = {rule.id: rule for rule in AST_RULES}
        unknown = sorted(set(args.rule_ids) - set(known))
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [known[rule_id] for rule_id in args.rule_ids]

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    report = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        print(f"sradlint: {report.summary()}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
