#!/usr/bin/env python
"""Dead-import linter -- thin shim over ``repro.lint.ast_rules``.

Historically a standalone script; the logic now lives in the shared rule
engine as the ``ast.dead-import`` rule (``tools/sradlint.py`` runs it along
with the rest of the rule set).  This entry point keeps the original CLI
contract for existing CI steps and muscle memory: same finding lines on
stdout, same ``check_imports: N files, M finding(s)`` summary on stderr,
same non-zero exit status when anything is found.

Usage::

    python tools/check_imports.py src tests benchmarks examples tools
"""

from __future__ import annotations

import os
import sys
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)

from repro.lint.ast_rules import (  # noqa: E402
    DeadImportRule,
    iter_python_files,
    lint_file,
)


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "benchmarks", "tools"]
    rules = [DeadImportRule()]
    lines: List[str] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings, _suppressed = lint_file(path, rules=rules)
        lines.extend(f"{f.location}: {f.message}" for f in findings)
    for line in lines:
        print(line)
    print(
        f"check_imports: {count} files, {len(lines)} finding(s)",
        file=sys.stderr,
    )
    return 1 if lines else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
