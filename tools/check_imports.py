#!/usr/bin/env python
"""Dead-import linter (stdlib-only, so CI and offline dev boxes agree).

Walks the given files/directories, parses every ``*.py`` with :mod:`ast`,
and reports imported names that are never referenced in the module --
neither as an expression name (attribute roots count: ``os.path`` uses
``os``) nor re-exported through ``__all__``.  Exit status is non-zero when
any finding is reported, so the CI lint step keeps dead imports dead
without needing to ``pip install`` anything.

Usage::

    python tools/check_imports.py src tests benchmarks examples tools
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Dict, Iterator, List, Tuple


def iter_python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if not d.startswith((".", "__pycache__"))]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def imported_bindings(tree: ast.AST) -> Dict[str, Tuple[int, str]]:
    """Map bound name -> (line, display) for every import in the module."""
    bindings: Dict[str, Tuple[int, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings[bound] = (node.lineno, f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue  # star imports are opaque; skip them
                bound = alias.asname or alias.name
                bindings[bound] = (
                    node.lineno,
                    f"from {'.' * node.level}{node.module or ''} import {alias.name}",
                )
    return bindings


def used_names(tree: ast.AST) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Assign):
            # Names listed in __all__ count as (re-)exported uses.
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets:
                for element in ast.walk(node.value):
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        used.add(element.value)
    return used


def check_file(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]
    bindings = imported_bindings(tree)
    if not bindings:
        return []
    used = used_names(tree)
    findings = []
    for bound, (line, display) in sorted(bindings.items(), key=lambda kv: kv[1][0]):
        if bound not in used:
            findings.append(f"{path}:{line}: unused import: {display!s} (as {bound})")
    return findings


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "benchmarks", "tools"]
    findings: List[str] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    print(
        f"check_imports: {count} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
