#!/usr/bin/env python
"""Performance harness for the synthesis core.

Times the scenarios PR 5 optimised -- Quine-McCluskey minimisation, the
logic-optimization pipeline, FSM synthesis effort and cold/warm campaign
dispatch -- and writes the measurements to a ``BENCH_*.json`` file, seeding
the repo's performance trajectory: every future PR can run the same harness
and diff the numbers.

PR 7 adds the **service load generator**: N concurrent clients submitting M
campaigns each against one shared scheduler/cache, recording throughput,
dedup effectiveness (zero duplicate evaluations expected) and agreement
with a serial ``CampaignRunner.run``.  By default it spins an in-process
server; ``--connect HOST:PORT`` points it at a running ``sradgen --serve``
instead (what the CI service-smoke job does).

PR 9 adds the **cec scenario**: SAT-based combinational/sequential
equivalence checking of O0 netlists against their O1 rewrites
(:mod:`repro.verify`), asserting every point is proven equivalent and
recording solver effort.  ``--only cec`` runs just that scenario (the CI
verify job uploads its JSON as an artifact).

PR 10 adds the **resilience_overhead scenario**: per-call cost of the
disarmed :mod:`repro.resilience.faults` fault points that now sit on the
cache/scheduler/service hot paths, asserted against the same floor the
test suite pins (they must stay one global load + compare).

Usage::

    PYTHONPATH=src python tools/bench.py             # full sizes (~1 min)
    PYTHONPATH=src python tools/bench.py --smoke     # CI-sized (~15 s)
    PYTHONPATH=src python tools/bench.py --output BENCH_PR10.json

    # Load-generate against a live server and fail on any duplicate
    # evaluation or serial mismatch:
    PYTHONPATH=src python tools/bench.py --service-load \
        --connect 127.0.0.1:8787 --clients 4 --campaigns-per-client 2 \
        --check-dedup --output BENCH_SERVICE.json

Output schema (``scenario -> wall-clock + stats``)::

    {
      "schema": "sradgen-bench/1",
      "mode": "full" | "smoke",
      "python": "3.11.7",
      "scenarios": {
        "<name>": {
          "wall_s": <best-of-N wall clock, seconds>,
          "repeats": <N>,
          ...                  # scenario-specific stats; scenarios that
        }                      # also time the kept *_reference oracle
      }                        # report "reference_wall_s" and "speedup"
    }

Where a pre-optimization reference implementation is still in the tree
(``minimize``'s ``_reference`` shims), the harness times it too and records
the speedup directly; the campaign/opt scenarios record absolute wall-clock
for cross-PR comparison instead.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import sys
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import CampaignRunner, ResultCache, build_campaign
from repro.engine.jobs import build_design
from repro.obs import Tracer, collect_phase_totals, get_tracer, set_tracer
from repro.synth.fsm import FiniteStateMachine, synthesize_fsm
from repro.synth.fsm.synthesis import next_state_tables
from repro.synth.logic.minimize import (
    MinimizationStats,
    _minimize_cached,
    _minimize_reference,
    _prime_implicants,
    _select_cover,
    _select_cover_reference,
    minimize,
)
from repro.synth.logic.truth_table import TruthTable
from repro.synth.opt import optimize_netlist
from repro.workloads import registry
from repro.workloads.registry import build_pattern

SCHEMA = "sradgen-bench/1"

#: The qm_cover_selection scenario, shared with the CI floor benchmark
#: (benchmarks/test_qm_cover_speedup.py loads this module for it).
COVER_SEED = 2026
COVER_INPUTS_SMOKE = 9
COVER_INPUTS_FULL = 11


def cover_selection_table(num_inputs: int) -> TruthTable:
    """The seeded dense random table the cover-selection scenario times."""
    random.seed(COVER_SEED)
    on_set = frozenset(
        random.sample(list(range(1 << num_inputs)), (1 << num_inputs) // 2)
    )
    return TruthTable(num_inputs=num_inputs, on_set=on_set)


def _drop_in_process_caches() -> None:
    """Reset memo caches so every repeat measures genuinely cold work."""
    _minimize_cached.cache_clear()
    registry._cached_pattern.cache_clear()


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        _drop_in_process_caches()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fsm_next_state_tables(length: int) -> List[TruthTable]:
    """The binary-encoded next-state tables FSM synthesis minimises."""
    fsm = FiniteStateMachine.from_select_sequence(list(range(length)))
    return next_state_tables(fsm, "binary")


def bench_qm_fsm_tables(smoke: bool) -> Dict[str, object]:
    """QM minimisation of the widest exact-input FSM next-state tables."""
    length = 512 if smoke else 4096  # 4096 states = 12 state bits, the
    tables = _fsm_next_state_tables(length)  # default max_exact_inputs
    repeats = 3

    def run_new():
        stats = MinimizationStats()
        for table in tables:
            _cover, s = minimize(table)
            stats = stats + s
        return stats

    def run_reference():
        stats = MinimizationStats()
        for table in tables:
            _cover, s = _minimize_reference(table)
            stats = stats + s
        return stats

    wall, stats = _best_of(run_new, repeats)
    # The reference at full size runs once: it is the slow half by design.
    ref_wall, _ = _best_of(run_reference, repeats if smoke else 1)
    return {
        "wall_s": wall,
        "repeats": repeats,
        "reference_wall_s": ref_wall,
        "speedup": ref_wall / wall,
        "fsm_states": length,
        "table_inputs": tables[0].num_inputs,
        "tables": len(tables),
        "merge_operations": stats.merge_operations,
        "prime_implicants": stats.prime_implicants,
    }


def bench_qm_cover_selection(smoke: bool) -> Dict[str, object]:
    """Bitset vs reference cover selection on a dense random table."""
    num_inputs = COVER_INPUTS_SMOKE if smoke else COVER_INPUTS_FULL
    table = cover_selection_table(num_inputs)
    primes = _prime_implicants(table, MinimizationStats())
    repeats = 3

    wall, cover = _best_of(
        lambda: _select_cover(primes, table.on_set, MinimizationStats()), repeats
    )
    ref_wall, ref_cover = _best_of(
        lambda: _select_cover_reference(primes, table.on_set, MinimizationStats()),
        repeats,
    )
    assert cover == ref_cover, "bitset cover diverged from the reference"
    return {
        "wall_s": wall,
        "repeats": repeats,
        "reference_wall_s": ref_wall,
        "speedup": ref_wall / wall,
        "table_inputs": num_inputs,
        "primes": len(primes),
        "cover_size": len(cover),
    }


def bench_fsm_synthesis_effort(smoke: bool) -> Dict[str, object]:
    """Wall-clock of whole-FSM synthesis, the paper's Section 3 scenario."""
    lengths = [64, 128, 256] if smoke else [64, 128, 256, 1024]
    per_n = {}
    for length in lengths:
        fsm = FiniteStateMachine.from_select_sequence(list(range(length)))
        wall, result = _best_of(
            lambda f=fsm: synthesize_fsm(f, encoding="binary"), 3
        )
        per_n[str(length)] = {
            "wall_s": wall,
            "merge_operations": result.stats.merge_operations,
        }
    return {
        "wall_s": sum(entry["wall_s"] for entry in per_n.values()),
        "repeats": 3,
        "per_length": per_n,
    }


def bench_opt_pipeline(smoke: bool) -> Dict[str, object]:
    """Worklist pass pipeline (O1) over representative netlists."""
    size = 8 if smoke else 16
    points = [("CntAG", "adders"), ("FSM", "binary")]
    repeats = 3
    total = 0.0
    removed = {}
    for style, variant in points:
        pattern = build_pattern("motion_est_read", size, size)
        design = build_design(pattern, style, variant)
        netlist = design.netlist

        def run(source=netlist):
            return optimize_netlist(source.clone(), opt_level=1)

        wall, report = _best_of(run, repeats)
        total += wall
        removed[f"{style}[{variant}]"] = report.cells_removed
    return {
        "wall_s": total,
        "repeats": repeats,
        "array": f"{size}x{size}",
        "cells_removed": removed,
    }


def _campaign_phase_totals(campaign) -> Dict[str, float]:
    """Per-phase wall-second attribution for one serial cold campaign run.

    Runs the campaign once, serially, under a private enabled tracer and
    folds the span tree into ``phase -> total seconds``.  Serial execution
    keeps the attribution exact (no pool serialisation skew); this run is
    measured separately from the timed cold/warm repeats, so the headline
    ``wall_s`` figures stay tracing-free.
    """
    _drop_in_process_caches()
    previous = get_tracer()
    tracer = set_tracer(Tracer(enabled=True))
    try:
        with CampaignRunner(ResultCache(None), workers=0) as runner:
            runner.run(campaign)
    finally:
        set_tracer(previous)
    return collect_phase_totals(tracer.roots, prefixes=("job.", "flow."))


def bench_campaign(smoke: bool) -> Dict[str, Dict[str, object]]:
    """Cold and warm runs of a whole campaign through the chunked runner."""
    name = "smoke" if smoke else "opt_levels"
    campaign = build_campaign(name)
    repeats = 3
    cold = warm = float("inf")
    for _ in range(repeats):
        # Each cold repeat gets a fresh cache, a fresh (unwarmed) worker
        # pool and cleared in-process memo caches; the warm run replays the
        # same campaign against the cache the cold run just filled.
        _drop_in_process_caches()
        with tempfile.TemporaryDirectory() as tmp:
            with CampaignRunner(ResultCache(tmp)) as runner:
                start = time.perf_counter()
                cold_result = runner.run(campaign)
                cold = min(cold, time.perf_counter() - start)
                start = time.perf_counter()
                warm_result = runner.run(campaign)
                warm = min(warm, time.perf_counter() - start)
        assert cold_result.evaluated == len(campaign.jobs)
        assert warm_result.hits == len(campaign.jobs)
    base = {"campaign": name, "jobs": len(campaign.jobs)}
    # Schema-compatible superset of sradgen-bench/1: the cold scenario gains
    # a "phases" breakdown (phase name -> wall seconds, traced separately).
    phases = _campaign_phase_totals(campaign)
    return {
        f"campaign_{name}_cold": {
            "wall_s": cold, "repeats": repeats, "phases": phases, **base,
        },
        f"campaign_{name}_warm": {"wall_s": warm, "repeats": repeats, **base},
    }


def _start_local_service(cache_dir: str):
    """Spin an in-process campaign service; returns ``((host, port), stop)``."""
    import asyncio

    from repro.service.server import CampaignService

    ready = threading.Event()
    box: Dict[str, object] = {}

    def serve() -> None:
        async def main() -> None:
            service = CampaignService(cache_dir=cache_dir)
            box["addr"] = await service.start("127.0.0.1", 0)
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="bench-service", daemon=True)
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("in-process campaign service failed to start")

    def stop() -> None:
        box["loop"].call_soon_threadsafe(box["service"].request_shutdown)
        thread.join(30)

    return box["addr"], stop


def _remote_counters(host: str, port: int) -> Dict[str, int]:
    """The server's counter registry via the ``metrics`` op."""
    import asyncio

    from repro.service.client import ServiceClient

    async def fetch() -> Dict[str, int]:
        async with ServiceClient(host, port) as client:
            return await client.metrics()

    return asyncio.run(fetch())


def _normalized_record(record) -> Dict[str, object]:
    """Cached-form dict with volatile wall-clock zeroed and NaN made comparable."""
    data = record.to_dict()
    data["duration_s"] = 0.0
    return {
        key: None if isinstance(value, float) and math.isnan(value) else value
        for key, value in data.items()
    }


def bench_service_load(
    smoke: bool,
    *,
    clients: int = 4,
    campaigns_per_client: int = 2,
    connect: Optional[Tuple[str, int]] = None,
    retry_policy=None,
) -> Dict[str, object]:
    """N clients x M campaigns against one shared scheduler and cache.

    Every client submits the same campaign, so all requests past the first
    overlap completely: with cross-request dedup working, the server
    evaluates each unique job exactly once no matter how many clients race
    (``duplicate_evaluations`` must be 0), and the streamed records agree
    with a serial in-process ``CampaignRunner.run``
    (``records_match_serial``; ``duration_s`` zeroed on both sides -- wall
    clock is the one field that legitimately differs run to run).

    ``retry_policy`` (a :class:`repro.resilience.retry.RetryPolicy`, armed
    by ``--retry-max``) lets the load run survive injected connection
    faults -- the chaos-smoke CI job arms ``SRADGEN_FAULTS`` on both sides
    and still requires zero duplicates and serial-identical records.
    """
    del smoke  # one size: the contention pattern, not the grid, is the load
    from repro.obs import metrics as local_metrics
    from repro.service.client import run_campaign_remote

    campaign = build_campaign("smoke")
    unique_jobs = len({job.key for job in campaign.jobs})

    stop = None
    tmp = None
    if connect is None:
        tmp = tempfile.TemporaryDirectory()
        (host, port), stop = _start_local_service(tmp.name)
    else:
        host, port = connect

    try:
        before = _remote_counters(host, port)
        results: List[object] = [None] * clients
        errors: List[str] = []

        heal_counters = ("client.reconnects", "client.error_retries")
        heals_before = {name: local_metrics.counter(name) for name in heal_counters}

        def client_worker(index: int) -> None:
            try:
                for _ in range(campaigns_per_client):
                    results[index] = run_campaign_remote(
                        host, port, campaign, retry_policy=retry_policy
                    )
            except Exception as error:  # noqa: BLE001 - recorded, then raised
                errors.append(f"client {index}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=client_worker, args=(i,), daemon=True)
            for i in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if errors:
            raise RuntimeError("; ".join(errors))
        after = _remote_counters(host, port)
    finally:
        if stop is not None:
            stop()
        if tmp is not None:
            tmp.cleanup()

    delta = {key: after.get(key, 0) - before.get(key, 0) for key in after}
    evaluations = delta.get("scheduler.evaluations", 0)
    requests = clients * campaigns_per_client
    records_streamed = requests * unique_jobs

    serial = CampaignRunner(ResultCache(None), workers=0).run(campaign)
    remote = results[0]
    records_match_serial = [
        _normalized_record(record) for record in remote.records
    ] == [_normalized_record(record) for record in serial.records]

    return {
        "wall_s": wall,
        "repeats": 1,
        "campaign": campaign.name,
        "clients": clients,
        "campaigns_per_client": campaigns_per_client,
        "requests": requests,
        "jobs_per_campaign": len(campaign.jobs),
        "unique_jobs": unique_jobs,
        "records_streamed": records_streamed,
        "throughput_records_per_s": records_streamed / wall if wall else 0.0,
        "evaluations": evaluations,
        "duplicate_evaluations": max(0, evaluations - unique_jobs),
        "dedup_hits": delta.get("scheduler.dedup_hits", 0),
        "cache_hits": delta.get("cache.hits", 0),
        "records_match_serial": records_match_serial,
        "client_reconnects": local_metrics.counter("client.reconnects")
        - heals_before["client.reconnects"],
        "client_error_retries": local_metrics.counter("client.error_retries")
        - heals_before["client.error_retries"],
    }


def bench_cec(smoke: bool) -> Dict[str, object]:
    """SAT-based CEC (O0 netlist vs its O1 rewrite) over representative designs.

    Every point must come back *proven equivalent* -- this scenario doubles
    as a formal regression gate for the optimizer -- and the recorded wall
    clock seeds the verification-performance trajectory (solver tuning, SAT
    sweeping changes) the same way the QM scenarios seed minimisation.
    """
    from repro.verify import check_equivalence

    size = 4 if smoke else 8
    points = [
        ("fifo", "SRAG", "two-hot"),
        ("dct", "CntAG", "decoders"),
        ("motion_est_read", "CntAG", "adders"),
        ("zoombytwo", "FSM", "binary"),
    ]
    repeats = 3 if smoke else 1
    total = 0.0
    per_point: Dict[str, Dict[str, object]] = {}
    for workload, style, variant in points:
        pattern = build_pattern(workload, size, size)
        netlist = build_design(pattern, style, variant).netlist
        revised = optimize_and_measure(netlist)

        def run(golden=netlist, rev=revised):
            return check_equivalence(golden, rev)

        wall, result = _best_of(run, repeats)
        assert result.equivalent and result.proven, (
            f"{workload}/{style}[{variant}]: {result.summary()}"
        )
        total += wall
        per_point[f"{workload}/{style}[{variant}]"] = {
            "wall_s": wall,
            "method": result.method,
            **result.stats,
        }
    return {
        "wall_s": total,
        "repeats": repeats,
        "array": f"{size}x{size}",
        "per_point": per_point,
    }


def optimize_and_measure(netlist):
    """O1 rewrite on a clone -- the revised side of each CEC point."""
    revised = netlist.clone()
    optimize_netlist(revised, opt_level=1)
    return revised


#: Per-call ceiling for a disarmed fault point -- the same floor
#: tests/test_resilience_faults.py pins (matches the NULL_SPAN bound).
FAULT_POINT_FLOOR_S = 2.5e-6


def bench_resilience_overhead(smoke: bool) -> Dict[str, object]:
    """Disarmed fault-point cost on the hot paths, pinned to the floor.

    Measures three shapes: a disarmed :func:`fault_point`, a disarmed
    :func:`fault_data` (identity pass-through of a cache-append payload),
    and a plan armed for *other* sites (the cost a chaos run imposes on
    seams it is not targeting).  Each must stay under
    ``FAULT_POINT_FLOOR_S`` per call or the zero-overhead contract -- what
    justifies compiling the sites into production paths permanently -- is
    broken.
    """
    from repro.resilience.faults import (
        FaultPlan,
        FaultRule,
        clear_plan,
        fault_data,
        fault_point,
        install_plan,
    )

    n = 200_000 if smoke else 1_000_000
    payload = '{"key": "0" * 64, "record": {"status": "ok"}}\n'

    def timed(fn) -> float:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return time.perf_counter() - start

    clear_plan()
    disarmed_point = timed(lambda: fault_point("cache.append"))
    disarmed_data = timed(lambda: fault_data("cache.append.write", payload))
    install_plan(FaultPlan([FaultRule(site="some.other.site")]))
    try:
        armed_unmatched = timed(lambda: fault_point("cache.append"))
    finally:
        clear_plan()

    per_call = {
        "disarmed_fault_point_ns": disarmed_point / n * 1e9,
        "disarmed_fault_data_ns": disarmed_data / n * 1e9,
        "armed_unmatched_site_ns": armed_unmatched / n * 1e9,
    }
    for name, nanos in per_call.items():
        assert nanos < FAULT_POINT_FLOOR_S * 1e9, (
            f"{name}: {nanos:.0f} ns/call breaks the "
            f"{FAULT_POINT_FLOOR_S * 1e9:.0f} ns zero-overhead floor"
        )
    return {
        "wall_s": disarmed_point + disarmed_data + armed_unmatched,
        "repeats": 1,
        "calls_per_shape": n,
        "floor_ns_per_call": FAULT_POINT_FLOOR_S * 1e9,
        **per_call,
    }


def run_benchmarks(smoke: bool, only: Optional[str] = None) -> Dict[str, object]:
    builders: Dict[str, Callable[[], object]] = {
        "qm_fsm_tables": lambda: bench_qm_fsm_tables(smoke),
        "qm_cover_selection": lambda: bench_qm_cover_selection(smoke),
        "fsm_synthesis_effort": lambda: bench_fsm_synthesis_effort(smoke),
        "opt_pipeline": lambda: bench_opt_pipeline(smoke),
        "campaign": lambda: bench_campaign(smoke),
        "cec": lambda: bench_cec(smoke),
        "service_load": lambda: bench_service_load(smoke),
        "resilience_overhead": lambda: bench_resilience_overhead(smoke),
    }
    if only is not None:
        if only not in builders:
            raise SystemExit(
                f"unknown scenario {only!r}; choose from {sorted(builders)}"
            )
        builders = {only: builders[only]}
    scenarios: Dict[str, object] = {}
    for name, builder in builders.items():
        result = builder()
        if name == "campaign":  # expands into cold + warm entries
            scenarios.update(result)
        else:
            scenarios[name] = result
    return {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized scenarios (seconds instead of a minute)",
    )
    parser.add_argument(
        "--output", default="BENCH_PR10.json",
        help="destination JSON file (default: %(default)s)",
    )
    parser.add_argument(
        "--only", default=None, metavar="SCENARIO",
        help="run a single scenario (qm_fsm_tables, qm_cover_selection, "
             "fsm_synthesis_effort, opt_pipeline, campaign, cec, "
             "service_load, resilience_overhead)",
    )
    parser.add_argument(
        "--service-load", action="store_true",
        help="run only the service load-generator scenario",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="load-generate against a running sradgen --serve instead of an "
             "in-process server (implies --service-load)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent load-generator clients (default: %(default)s)",
    )
    parser.add_argument(
        "--campaigns-per-client", type=int, default=2,
        help="sequential campaigns each client submits (default: %(default)s)",
    )
    parser.add_argument(
        "--check-dedup", action="store_true",
        help="exit non-zero unless the load run had zero duplicate "
             "evaluations and matched a serial run",
    )
    parser.add_argument(
        "--retry-max", type=int, default=0, metavar="N",
        help="arm the load-generator clients with an N-retry policy "
             "(reconnect-and-resume; default: no retries)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base backoff for --retry-max (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.service_load or args.connect:
        connect = None
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            connect = (host, int(port))
        retry_policy = None
        if args.retry_max > 0:
            from repro.resilience.retry import RetryPolicy

            retry_policy = RetryPolicy(
                max_retries=args.retry_max, base_backoff_s=args.retry_backoff
            )
        stats = bench_service_load(
            args.smoke,
            clients=args.clients,
            campaigns_per_client=args.campaigns_per_client,
            connect=connect,
            retry_policy=retry_policy,
        )
        payload = {
            "schema": SCHEMA,
            "mode": "smoke" if args.smoke else "full",
            "python": platform.python_version(),
            "scenarios": {"service_load": stats},
        }
    else:
        payload = run_benchmarks(args.smoke, only=args.only)
    for name, data in payload["scenarios"].items():
        extra = ""
        if "speedup" in data:
            extra = (
                f"  (reference {data['reference_wall_s']:8.3f} s, "
                f"{data['speedup']:6.1f}x)"
            )
        print(f"{name:<28} {data['wall_s']:8.3f} s{extra}")
        for phase_name, seconds in sorted(data.get("phases", {}).items()):
            print(f"    {phase_name:<24} {seconds:8.3f} s")
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check_dedup:
        stats = payload["scenarios"]["service_load"]
        problems = []
        if stats["duplicate_evaluations"]:
            problems.append(
                f"{stats['duplicate_evaluations']} duplicate evaluation(s) "
                f"({stats['evaluations']} evaluations for "
                f"{stats['unique_jobs']} unique jobs)"
            )
        if not stats["records_match_serial"]:
            problems.append("streamed records diverged from the serial run")
        if problems:
            print("service load check FAILED: " + "; ".join(problems), file=sys.stderr)
            return 1
        print(
            f"service load check ok: {stats['evaluations']} evaluations, "
            f"{stats['dedup_hits']} dedup hit(s), "
            f"{stats['cache_hits']} cache hit(s)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
