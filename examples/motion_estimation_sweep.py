#!/usr/bin/env python3
"""Motion-estimation scenario: SRAG versus CntAG across image sizes.

Reproduces a reduced version of the paper's Figures 8 and 10 for the read and
write sequences of ``new_img``: for each image size the SRAG and the
counter-based generator (CntAG) are synthesised, and delay/area are printed
together with the delay-reduction and area-increase factors.

Run with::

    python examples/motion_estimation_sweep.py [max_size]

``max_size`` defaults to 64; pass 256 to cover the paper's full sweep.
"""

import sys

from repro.analysis.reporting import format_table
from repro.analysis.tradeoff import average_factors, compare_generators
from repro.workloads import motion_estimation


def main(max_size: int = 64) -> None:
    sizes = [s for s in (16, 32, 64, 128, 256) if s <= max_size]
    rows = []
    records = []
    for size in sizes:
        pattern = motion_estimation.new_img_read_pattern(size, size, 2, 2)
        record = compare_generators(f"motion_est_read_{size}", pattern)
        records.append(record)
        rows.append(
            [
                f"{size}x{size}",
                record.srag.delay_ns,
                record.cntag.delay_ns,
                record.srag.area_cells,
                record.cntag.area_cells,
                record.delay_reduction_factor,
                record.area_increase_factor,
            ]
        )

    print(
        format_table(
            [
                "array",
                "SRAG delay/ns",
                "CntAG delay/ns",
                "SRAG area",
                "CntAG area",
                "delay x",
                "area x",
            ],
            rows,
            title="Motion estimation (read sequence): SRAG vs CntAG",
        )
    )
    delay_factor, area_factor = average_factors(records)
    print()
    print(
        f"average delay reduction factor: {delay_factor:.2f} "
        f"(paper, Table 3 'motion est': 1.8)"
    )
    print(
        f"average area increase factor:   {area_factor:.2f} "
        f"(paper, Table 3 'motion est': 3.0)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
