#!/usr/bin/env python3
"""Design-space exploration: choosing an address generator per workload.

The paper's stated end goal is an explorer that "can explore the vast design
space opened up by address decoder decoupling ... and choose the best
architecture".  This example runs that exploration for three workloads
(DCT column pass, zoom-by-two, motion-estimation block read), prints every
applicable architecture with its area/delay, marks the Pareto-optimal points,
and shows what happens for a sequence the SRAG cannot implement (a
serpentine scan), where the mapper rejects it and the relaxed multi-counter
extension takes over.

Run with::

    python examples/design_space_exploration.py
"""

from repro.analysis.explorer import explore
from repro.core.mapper import map_sequence
from repro.core.mapping_params import MappingError
from repro.core.multi_counter import GeneralisedSragModel, map_sequence_relaxed
from repro.workloads import dct, motion_estimation, patterns, zoom


def main() -> None:
    workloads = {
        "dct column pass (8x8)": dct.column_pass_pattern(8, 8),
        "zoom by two (8x8)": zoom.zoom_read_pattern(8, 8, 2),
        "motion estimation read (8x8)": motion_estimation.new_img_read_pattern(8, 8, 2, 2),
    }
    for label, pattern in workloads.items():
        print(f"### {label}")
        print(explore(pattern).describe())
        print()

    # A pattern outside the SRAG's reach: the serpentine (boustrophedon) scan.
    serpentine = patterns.serpentine_sequence(4, 4)
    print("### serpentine scan (4x4) -- outside the strict SRAG's restrictions")
    try:
        map_sequence(serpentine.col_sequence, num_lines=4)
    except MappingError as error:
        print(f"strict mapper: {error}")

    # An unequal-repetition sequence handled by the relaxed architecture.
    irregular = [5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    print()
    print("### unequal repetition counts -- handled by the multi-counter extension")
    try:
        map_sequence(irregular, num_lines=8)
    except MappingError as error:
        print(f"strict mapper: {error}")
    parameters = map_sequence_relaxed(irregular, num_lines=8)
    regenerated = GeneralisedSragModel(parameters).run(len(irregular))
    print(f"relaxed mapping registers: {parameters.registers}")
    print(f"relaxed division counts:   {parameters.division_counts}")
    print(f"regenerates the sequence:  {regenerated == irregular}")


if __name__ == "__main__":
    main()
