#!/usr/bin/env python3
"""Campaign-scale design-space exploration with caching and parallelism.

Where ``design_space_exploration.py`` explores one workload at a time, this
example drives the campaign engine over a whole grid: every architecture for
three workloads at three array sizes, evaluated by a pool of worker
processes, with every result persisted in an on-disk cache.  Running the
script a second time replays the campaign entirely from the cache (watch the
"cache hits" line), which is how the figure sweeps and any future heuristic
search can iterate over the design space without re-synthesising known
points.

Run with::

    python examples/campaign_exploration.py [cache_dir]
"""

import sys

from repro.engine import Campaign, CampaignRunner, ResultCache


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".sradgen_cache"
    campaign = Campaign.from_grid(
        "example",
        workloads=("dct", "zoombytwo", "motion_est_read"),
        geometries=((4, 4), (8, 8), (16, 16)),
        description="example grid: 3 workloads x 3 sizes x all styles",
    )
    print(f"{len(campaign)} design points, cache in {cache_dir!r}")

    runner = CampaignRunner(
        ResultCache(cache_dir),
        progress=lambda record, done, total: print(
            f"  [{done:>3}/{total}] {record.label:<44} "
            f"{'cached' if record.cached else record.status}"
        ),
    )
    result = runner.run(campaign)
    print()
    print(result.describe())

    # The grid is data: pick the fastest design per workload/geometry group.
    print()
    print("fastest design per group:")
    for (workload, rows, cols, library), front in sorted(result.pareto_fronts().items()):
        best = min(front, key=lambda record: record.delay_ns)
        print(
            f"  {workload:<18} {rows}x{cols}: {best.style}[{best.variant}] "
            f"at {best.delay_ns:.3f} ns / {best.area_cells:.0f} cu"
        )


if __name__ == "__main__":
    main()
