#!/usr/bin/env python3
"""System-level scenario: a complete ADDM + SRAG datapath for image zooming.

The generated address generator is only useful if it really streams the right
pixels.  This example builds the full system the paper's Figure 2 sketches:

* an address decoder-decoupled memory holding a small source image,
* a write-order SRAG filling it in raster order (gate-level simulation),
* a read-order SRAG producing the zoom-by-two access pattern, and
* a consumer that assembles the zoomed output image from the streamed pixels.

Along the way it checks the safety property the paper's conclusion worries
about: at no point are two row (or column) select lines asserted together.

Run with::

    python examples/addm_system_simulation.py
"""

from repro.core.addm_generator import SragAddressGenerator
from repro.hdl.simulator import Simulator
from repro.memory import AddressDecoderDecoupledMemory
from repro.workloads import fifo, zoom

SRC_WIDTH = 4
SRC_HEIGHT = 4
FACTOR = 2


def drive(generator: SragAddressGenerator, memory, values=None):
    """Clock a generator's netlist against the ADDM; read or write each cycle."""
    simulator = Simulator(generator.netlist)
    simulator.reset()
    simulator.poke("next", 1)
    streamed = []
    for step in range(generator.sequence.length):
        simulator.settle()
        row_select = [simulator.peek(net) for net in generator.row_ports.select_lines]
        col_select = [simulator.peek(net) for net in generator.col_ports.select_lines]
        assert sum(row_select) == 1 and sum(col_select) == 1, "select lines not two-hot"
        if values is None:
            streamed.append(memory.read(row_select, col_select))
        else:
            memory.write(row_select, col_select, values[step])
        simulator.step()
    return streamed


def main() -> None:
    # Source image: pixel value encodes its own coordinates for easy checking.
    source_pixels = [10 * r + c for r in range(SRC_HEIGHT) for c in range(SRC_WIDTH)]
    memory = AddressDecoderDecoupledMemory(SRC_HEIGHT, SRC_WIDTH)

    # Fill the memory through a raster-order (FIFO) SRAG.
    write_generator = SragAddressGenerator.from_sequence(
        fifo.fifo_sequence(SRC_WIDTH, SRC_HEIGHT)
    )
    drive(write_generator, memory, values=source_pixels)
    print("source image loaded through the write-order SRAG:")
    for row in memory.array.snapshot():
        print("  ", row)

    # Read it back through the zoom-by-two SRAG and assemble the output image.
    read_generator = SragAddressGenerator.from_sequence(
        zoom.zoom_read_sequence(SRC_WIDTH, SRC_HEIGHT, FACTOR)
    )
    print()
    print("zoom read mapping (row dimension):")
    print(read_generator.row_mapping.describe())

    streamed = drive(read_generator, memory)
    out_width = SRC_WIDTH * FACTOR
    zoomed = [
        streamed[i * out_width:(i + 1) * out_width]
        for i in range(SRC_HEIGHT * FACTOR)
    ]
    print()
    print("zoomed output image (streamed through the read-order SRAG):")
    for row in zoomed:
        print("  ", row)

    # Check against a software zoom.
    expected = [
        [source_pixels[(r // FACTOR) * SRC_WIDTH + (c // FACTOR)] for c in range(out_width)]
        for r in range(SRC_HEIGHT * FACTOR)
    ]
    assert zoomed == expected, "zoomed image does not match the software reference"
    print()
    print("gate-level ADDM system matches the software reference zoom.")


if __name__ == "__main__":
    main()
