#!/usr/bin/env python3
"""Quickstart: map an address sequence onto the SRAG and measure it.

This walks the complete flow of the paper on its own running example
(Tables 1 and 2):

1. generate the ``new_img`` read sequence of the block-matching kernel,
2. run the SRAdGen mapping procedure on its row/column address sequences,
3. elaborate the two-hot SRAG, verify it at gate level,
4. emit synthesisable VHDL, and
5. report area and delay against the 0.18 um-class cell library.

Run with::

    python examples/quickstart.py
"""

from repro.core import generate
from repro.workloads import motion_estimation


def main() -> None:
    # Step 1: the paper's running example -- a 4x4 image read in 2x2 blocks.
    sequence = motion_estimation.read_sequence(
        img_width=4, img_height=4, mb_width=2, mb_height=2
    )
    print("Address sequence (Table 1):")
    print(f"  LinAS = {sequence.linear}")
    print(f"  RowAS = {sequence.row_sequence}")
    print(f"  ColAS = {sequence.col_sequence}")
    print()

    # Steps 2-5: the SRAdGen flow (mapping, elaboration, verification, HDL,
    # synthesis) in one call.
    result = generate(sequence, emit_vhdl_text=True, synthesize=True)

    print("Row address sequence mapping (Table 2):")
    print(result.row_mapping.describe())
    print()
    print("Column address sequence mapping:")
    print(result.col_mapping.describe())
    print()

    print("Synthesis result:")
    print(f"  {result.synthesis.summary()}")
    print()

    vhdl_lines = result.vhdl.splitlines()
    print(f"Generated VHDL: {len(vhdl_lines)} lines; entity preview:")
    for line in vhdl_lines:
        if line.startswith("entity srag_"):
            print(f"  {line}")
            break


if __name__ == "__main__":
    main()
